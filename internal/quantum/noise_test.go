package quantum

import (
	"math"
	"math/rand"
	"testing"

	"rasengan/internal/bitvec"
)

func TestNoiseModelZero(t *testing.T) {
	var nm *NoiseModel
	if !nm.IsZero() {
		t.Error("nil model should be zero")
	}
	nm2 := &NoiseModel{}
	if !nm2.IsZero() {
		t.Error("empty model should be zero")
	}
	nm3 := &NoiseModel{TwoQubitDepol: 0.01}
	if nm3.IsZero() {
		t.Error("nonzero model reported zero")
	}
}

func TestSurvivalProb(t *testing.T) {
	nm := &NoiseModel{OneQubitDepol: 0.001, TwoQubitDepol: 0.01}
	got := nm.SurvivalProb(10, 5)
	want := math.Pow(0.999, 10) * math.Pow(0.99, 5)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("survival = %v, want %v", got, want)
	}
}

func TestNoiselessTrajectoryIsIdeal(t *testing.T) {
	c := NewCircuit(2)
	c.H(0)
	c.CX(0, 1)
	rng := rand.New(rand.NewSource(1))
	d := RunDenseTrajectory(c, NewDense(2), &NoiseModel{}, rng)
	if math.Abs(d.Probability(0b11)-0.5) > tol {
		t.Error("zero-noise trajectory deviates from ideal")
	}
}

func TestDepolarizingCorruptsBasisState(t *testing.T) {
	// A circuit of many noisy X pairs on |0⟩ should sometimes end off |0⟩.
	c := NewCircuit(1)
	for i := 0; i < 50; i++ {
		c.X(0)
		c.X(0)
	}
	nm := &NoiseModel{OneQubitDepol: 0.05}
	rng := rand.New(rand.NewSource(11))
	off := 0
	for trial := 0; trial < 50; trial++ {
		d := RunDenseTrajectory(c, NewDense(1), nm, rng)
		if d.Probability(0) < 0.5 {
			off++
		}
	}
	if off == 0 {
		t.Error("depolarizing noise never flipped the state")
	}
}

func TestAmplitudeDampingDrivesToZeroState(t *testing.T) {
	// Strong amplitude damping across many idle gates relaxes |1⟩ → |0⟩.
	c := NewCircuit(1)
	c.X(0)
	for i := 0; i < 200; i++ {
		c.RZ(0, 0.01) // idle-ish gates that trigger the damping channel
	}
	nm := &NoiseModel{AmplitudeDamping: 0.05}
	rng := rand.New(rand.NewSource(5))
	relaxed := 0
	for trial := 0; trial < 30; trial++ {
		d := RunDenseTrajectory(c, NewDense(1), nm, rng)
		if d.Probability(0) > 0.99 {
			relaxed++
		}
	}
	if relaxed < 25 {
		t.Errorf("amplitude damping relaxed only %d/30 trajectories", relaxed)
	}
}

func TestPhaseDampingKillsCoherence(t *testing.T) {
	// |+⟩ under heavy phase damping then H should no longer return |0⟩
	// deterministically (averaged over trajectories).
	c := NewCircuit(1)
	c.H(0)
	for i := 0; i < 100; i++ {
		c.RZ(0, 0)
	}
	c.H(0)
	nm := &NoiseModel{PhaseDamping: 0.1}
	rng := rand.New(rand.NewSource(9))
	sum := 0.0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		d := RunDenseTrajectory(c, NewDense(1), nm, rng)
		sum += d.Probability(1)
	}
	avg := sum / trials
	if avg < 0.3 {
		t.Errorf("phase damping left too much coherence: P(1)=%v", avg)
	}
}

func TestReadoutError(t *testing.T) {
	nm := &NoiseModel{ReadoutError: 1.0}
	rng := rand.New(rand.NewSource(2))
	x := nm.ApplyReadout(bitvec.MustFromString("0101"), rng)
	if x.String() != "1010" {
		t.Errorf("readout error 1.0 should flip all bits, got %s", x)
	}
}

func TestSampleDenseNoisyShotCount(t *testing.T) {
	c := NewCircuit(2)
	c.H(0)
	nm := &NoiseModel{TwoQubitDepol: 0.02}
	rng := rand.New(rand.NewSource(8))
	counts := SampleDenseNoisy(c, NewDense(2), nm, 137, 10, rng)
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 137 {
		t.Errorf("shots = %d, want 137", total)
	}
}

func TestSparseDepolarizingInjectsErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	flipped := 0
	for trial := 0; trial < 200; trial++ {
		s := NewSparse(bitvec.MustFromString("0000"))
		ApplyDepolarizingSparse(s, 1, 0.5, rng)
		if s.Amplitude(bitvec.MustFromString("0000")) == 0 {
			flipped++
		}
	}
	// p=0.5, 2/3 of Paulis move the basis state: expect ~66 flips.
	if flipped < 30 || flipped > 110 {
		t.Errorf("flip count %d outside expected band", flipped)
	}
}

func TestSparseAmplitudeDamping(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	collapsed := 0
	for trial := 0; trial < 300; trial++ {
		s := NewSparse(bitvec.MustFromString("1"))
		ApplyAmplitudeDampingSparse(s, 0, 0.3, rng)
		if s.Amplitude(bitvec.MustFromString("0")) != 0 {
			collapsed++
		}
	}
	// For a basis |1⟩ state, jump probability is exactly γ = 0.3.
	if collapsed < 50 || collapsed > 130 {
		t.Errorf("collapse count %d outside expected band", collapsed)
	}
}

func TestSparsePhaseDampingLeavesBasisStates(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	s := NewSparse(bitvec.MustFromString("1"))
	ApplyPhaseDampingSparse(s, 0, 0.4, rng)
	// A basis state is an eigenstate of dephasing: probability unchanged.
	p := s.Norm()
	if math.Abs(p-1) > 1e-9 {
		t.Errorf("phase damping changed basis state norm to %v", p)
	}
}

func TestNoisySparseEvolutionStaysNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	s := NewSparse(bitvec.New(6))
	for step := 0; step < 20; step++ {
		u := make([]int64, 6)
		u[step%6] = 1
		if step%2 == 0 {
			u[step%6] = -1
		}
		s.ApplyTransition(u, 0.4)
		ApplyDepolarizingSparse(s, step%6, 0.1, rng)
		ApplyAmplitudeDampingSparse(s, (step+1)%6, 0.02, rng)
	}
	if math.Abs(s.Norm()-1) > 1e-6 {
		t.Errorf("norm drifted to %v", s.Norm())
	}
}
