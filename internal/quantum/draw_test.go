package quantum

import (
	"strings"
	"testing"
)

func TestDrawBellCircuit(t *testing.T) {
	c := NewCircuit(2)
	c.H(0)
	c.CX(0, 1)
	out := Draw(c)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("expected 2 wire rows, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "H") || !strings.Contains(lines[0], "●") {
		t.Errorf("row 0 missing H/control: %q", lines[0])
	}
	if !strings.Contains(lines[1], "X") {
		t.Errorf("row 1 missing target: %q", lines[1])
	}
}

func TestDrawConnectorsThroughMiddleWires(t *testing.T) {
	c := NewCircuit(3)
	c.CX(0, 2)
	out := Draw(c)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.Contains(lines[1], "│") {
		t.Errorf("middle wire missing connector: %q", lines[1])
	}
}

func TestDrawMCP(t *testing.T) {
	c := NewCircuit(3)
	c.MCP([]int{0, 1, 2}, 0.5)
	out := Draw(c)
	if strings.Count(out, "●") != 2 || !strings.Contains(out, "P(0.50)") {
		t.Errorf("MCP rendering wrong:\n%s", out)
	}
}

func TestDrawRotationLabels(t *testing.T) {
	c := NewCircuit(1)
	c.RY(0, 1.25)
	if !strings.Contains(Draw(c), "RY(1.25)") {
		t.Error("rotation label missing")
	}
}

func TestDrawEmpty(t *testing.T) {
	if Draw(NewCircuit(0)) != "" {
		t.Error("empty circuit should render empty")
	}
	out := Draw(NewCircuit(2)) // wires but no gates
	if !strings.Contains(out, "q0") || !strings.Contains(out, "q1") {
		t.Errorf("gateless circuit missing wires:\n%s", out)
	}
}

func TestDrawParallelGatesShareColumn(t *testing.T) {
	c := NewCircuit(2)
	c.H(0)
	c.H(1)
	out := Draw(c)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if strings.Index(lines[0], "H") != strings.Index(lines[1], "H") {
		t.Error("parallel gates not aligned in one layer")
	}
}
