package quantum

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"rasengan/internal/parallel"
)

// benchWorkerCounts returns the worker counts worth measuring on this
// host: serial, powers of two up to the core count, and the core count.
func benchWorkerCounts() []int {
	counts := []int{1}
	for w := 2; w < runtime.NumCPU(); w *= 2 {
		counts = append(counts, w)
	}
	if n := runtime.NumCPU(); n > 1 {
		counts = append(counts, n)
	}
	return counts
}

// BenchmarkTrajectoriesParallel measures the Monte-Carlo trajectory
// fan-out of SampleDenseNoisy — the Fig. 14 hot loop — at each worker
// count. Results are bit-identical across sub-benchmarks; only wall-clock
// may differ.
func BenchmarkTrajectoriesParallel(b *testing.B) {
	c := NewCircuit(12)
	for q := 0; q < 12; q++ {
		c.H(q)
	}
	for layer := 0; layer < 3; layer++ {
		for q := 0; q+1 < 12; q++ {
			c.CX(q, q+1)
			c.RZ(q, 0.2+0.05*float64(q))
		}
	}
	nm := &NoiseModel{OneQubitDepol: 0.001, TwoQubitDepol: 0.01, AmplitudeDamping: 0.002, PhaseDamping: 0.002, ReadoutError: 0.01}
	init := NewDense(12)
	defer parallel.SetWorkers(0)
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			parallel.SetWorkers(w)
			rng := rand.New(rand.NewSource(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				SampleDenseNoisy(c, init, nm, 256, 32, rng)
			}
		})
	}
}

// BenchmarkDenseKernelsParallel measures the sharded statevector kernels
// on a register above the parallel threshold (2^20 amplitudes), the
// regime of the wide dense-baseline sweeps.
func BenchmarkDenseKernelsParallel(b *testing.B) {
	const n = 20
	energy := make([]float64, 1<<n)
	for i := range energy {
		energy[i] = float64(i % 101)
	}
	u := make([]int64, n)
	u[2], u[9], u[17] = 1, -1, 1
	defer parallel.SetWorkers(0)
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			parallel.SetWorkers(w)
			d := NewDense(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Apply1Q(7, [2][2]complex128{{complex(0.8, 0), complex(0.6, 0)}, {complex(-0.6, 0), complex(0.8, 0)}})
				d.applyCX(3, 15)
				d.applyMCP([]int{1, 8, 14}, 0.4)
				d.ApplyTransition(u, 0.5)
				_ = d.Norm()
				_ = d.ExpectationDiagonal(energy)
			}
		})
	}
}
