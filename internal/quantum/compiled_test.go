package quantum

import (
	"math/rand"
	"testing"

	"rasengan/internal/bitvec"
	"rasengan/internal/parallel"
)

// randTransitionOps draws m random transition vectors over n variables,
// each entry in {-1,0,+1} with at least one nonzero, plus one all-zero
// vector to cover the degenerate no-op case.
func randTransitionOps(rng *rand.Rand, n, m int) [][]int64 {
	ops := make([][]int64, 0, m+1)
	for len(ops) < m {
		u := make([]int64, n)
		nz := false
		for i := range u {
			switch rng.Intn(4) {
			case 0:
				u[i] = 1
				nz = true
			case 1:
				u[i] = -1
				nz = true
			}
		}
		if nz {
			ops = append(ops, u)
		}
	}
	ops = append(ops, make([]int64, n)) // degenerate H^τ(0)
	return ops
}

// TestCompiledMatchesSparseBitwise is the engine's core contract: evolving
// the same schedule from the same seed, the compiled state's support and
// every amplitude equal the map engine's exactly (==, not within tolerance)
// after every operator application.
func TestCompiledMatchesSparseBitwise(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		n := 4 + rng.Intn(10)
		ops := randTransitionOps(rng, n, 2+rng.Intn(5))
		init := bitvec.New(n)
		for i := 0; i < n; i++ {
			init.Set(i, rng.Intn(2) == 1)
		}
		cs, ok := CompileSpace(init, ops, 0)
		if !ok {
			t.Fatalf("trial %d: compile failed on a %d-var schedule", trial, n)
		}
		sp := NewSparse(init)
		st := cs.NewState()
		if !st.ResetState(init) {
			t.Fatalf("trial %d: seed not in compiled space", trial)
		}
		// Several sweeps over the schedule with varying angles, checking
		// exact agreement after every single application.
		for sweep := 0; sweep < 3; sweep++ {
			for op, u := range ops {
				tt := 0.05 + rng.Float64()*3
				sp.ApplyTransition(u, tt)
				st.ApplyTransition(op, tt)
				if sp.Size() != st.Size() {
					t.Fatalf("trial %d sweep %d op %d: support %d (sparse) vs %d (compiled)",
						trial, sweep, op, sp.Size(), st.Size())
				}
				for _, x := range sp.Support() {
					if sp.Amplitude(x) != st.Amplitude(x) {
						t.Fatalf("trial %d sweep %d op %d: amp mismatch at %s: %v vs %v",
							trial, sweep, op, x, sp.Amplitude(x), st.Amplitude(x))
					}
				}
			}
		}
	}
}

// TestCompiledSampleMatchesSparse pins sampling equality: same state, same
// rng seed, identical count maps — and SampleCounts agrees with Sample.
func TestCompiledSampleMatchesSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 10
	ops := randTransitionOps(rng, n, 4)
	init := bitvec.New(n)
	cs, ok := CompileSpace(init, ops, 0)
	if !ok {
		t.Fatal("compile failed")
	}
	sp := NewSparse(init)
	st := cs.NewState()
	st.ResetState(init)
	for op, u := range ops {
		tt := 0.3 + 0.2*float64(op)
		sp.ApplyTransition(u, tt)
		st.ApplyTransition(op, tt)
	}
	a := sp.Sample(rand.New(rand.NewSource(7)), 4096)
	b := st.Sample(rand.New(rand.NewSource(7)), 4096)
	if len(a) != len(b) {
		t.Fatalf("count maps differ in size: %d vs %d", len(a), len(b))
	}
	for x, c := range a {
		if b[x] != c {
			t.Fatalf("count mismatch at %s: %d vs %d", x, c, b[x])
		}
	}
	counts := make([]int, cs.Size())
	st.SampleCounts(rand.New(rand.NewSource(7)), 4096, counts)
	for i, c := range counts {
		if c != a[cs.StateAt(int32(i))] {
			t.Fatalf("SampleCounts mismatch at index %d: %d vs %d", i, c, a[cs.StateAt(int32(i))])
		}
	}
}

// TestCompileSpaceRespectsCaps verifies the compile budget produces a clean
// fallback signal rather than an oversized artifact.
func TestCompileSpaceRespectsCaps(t *testing.T) {
	n := 12
	ops := make([][]int64, n)
	for i := range ops {
		u := make([]int64, n)
		u[i] = 1
		ops[i] = u
	}
	// Single-bit flips generate the full 2^12 hypercube.
	if _, ok := CompileSpace(bitvec.New(n), ops, 100); ok {
		t.Fatal("compile succeeded past a 100-state budget on a 4096-state closure")
	}
	cs, ok := CompileSpace(bitvec.New(n), ops, 1<<13)
	if !ok {
		t.Fatal("compile failed within budget")
	}
	if cs.Size() != 1<<n {
		t.Fatalf("closure size %d, want %d", cs.Size(), 1<<n)
	}
	if cs.NumDistinctOps() != n {
		t.Fatalf("distinct ops %d, want %d", cs.NumDistinctOps(), n)
	}
}

// TestCompiledShardedMatchesSerial drives the support above the sharding
// threshold and checks the sharded kernel is bit-identical to the serial one
// at any worker count — the determinism contract of internal/parallel.
// Under -race this is also the data-race check of the two-phase apply.
func TestCompiledShardedMatchesSerial(t *testing.T) {
	n := 14 // 16384-state hypercube: above compiledShardMin after full spread
	ops := make([][]int64, n)
	for i := range ops {
		u := make([]int64, n)
		u[i] = 1
		ops[i] = u
	}
	init := bitvec.New(n)
	cs, ok := CompileSpace(init, ops, 1<<15)
	if !ok {
		t.Fatal("compile failed")
	}
	run := func(workers int) *CompiledState {
		old := parallel.Workers()
		parallel.SetWorkers(workers)
		defer parallel.SetWorkers(old)
		st := cs.NewState()
		st.ResetState(init)
		for sweep := 0; sweep < 2; sweep++ {
			for op := range ops {
				st.ApplyTransition(op, 0.4+0.1*float64(op%5))
			}
		}
		return st
	}
	serial := run(1)
	for _, w := range []int{2, 8} {
		sharded := run(w)
		if serial.Size() != sharded.Size() {
			t.Fatalf("workers=%d: support %d vs serial %d", w, sharded.Size(), serial.Size())
		}
		si, pi := serial.SortedActive(), sharded.SortedActive()
		for k := range si {
			if si[k] != pi[k] {
				t.Fatalf("workers=%d: active set diverges at %d", w, k)
			}
			if serial.AmpAt(si[k]) != sharded.AmpAt(pi[k]) {
				t.Fatalf("workers=%d: amp diverges at index %d: %v vs %v",
					w, si[k], serial.AmpAt(si[k]), sharded.AmpAt(pi[k]))
			}
		}
	}
}

// TestCompiledApplyTransitionZeroAllocs is the steady-state allocation
// guard of the acceptance criteria: after one warm-up pass (which grows the
// active list and scratch to their high-water marks), a full reset-and-
// evolve cycle allocates nothing. Serial path only — the sharded kernel's
// worker handoff is excluded by pinning one worker.
func TestCompiledApplyTransitionZeroAllocs(t *testing.T) {
	old := parallel.Workers()
	parallel.SetWorkers(1)
	defer parallel.SetWorkers(old)

	rng := rand.New(rand.NewSource(5))
	n := 12
	ops := randTransitionOps(rng, n, 6)
	init := bitvec.New(n)
	cs, ok := CompileSpace(init, ops, 0)
	if !ok {
		t.Fatal("compile failed")
	}
	st := cs.NewState()
	idx, _ := cs.IndexOf(init)
	cycle := func() {
		st.Reset(idx)
		for sweep := 0; sweep < 2; sweep++ {
			for op := range ops {
				st.ApplyTransition(op, 0.7)
			}
		}
	}
	cycle() // warm-up: scratch reaches its high-water mark
	if allocs := testing.AllocsPerRun(50, cycle); allocs != 0 {
		t.Fatalf("ApplyTransition cycle allocates %v times per run; want 0", allocs)
	}
}

// TestCompiledResetClearsState guards the epoch scheme: amplitudes from a
// previous evolution must not leak through a Reset.
func TestCompiledResetClearsState(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 8
	ops := randTransitionOps(rng, n, 4)
	init := bitvec.New(n)
	cs, ok := CompileSpace(init, ops, 0)
	if !ok {
		t.Fatal("compile failed")
	}
	st := cs.NewState()
	st.ResetState(init)
	for op := range ops {
		st.ApplyTransition(op, 1.1)
	}
	st.ResetState(init)
	if st.Size() != 1 {
		t.Fatalf("support %d after reset, want 1", st.Size())
	}
	if st.Amplitude(init) != 1 {
		t.Fatalf("seed amplitude %v after reset, want 1", st.Amplitude(init))
	}
	if nrm := st.Norm(); nrm != 1 {
		t.Fatalf("norm %v after reset, want 1", nrm)
	}
}
