package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Flight recorder: a bounded ring of structured operational events the
// serving stack appends to at interesting moments (admission shed,
// engine fallback, lease renegotiation, warm-start decisions,
// checkpoint writes, recovered panics, WAL recovery, anomaly captures).
// The ring holds the most recent N events — old ones fall off the far
// end and are only counted — so an operator asking "why was that solve
// slow?" can dump the recent window (/debug/events, rasengan-inspect
// -events) without the service having stored an unbounded log. Like
// the rest of this package, recording is observational: nothing reads
// events back into a solve.

// Severity classifies an event for filtering and display.
type Severity string

const (
	SevInfo  Severity = "info"
	SevWarn  Severity = "warn"
	SevError Severity = "error"
)

// Event kinds recorded by the solve stack — a small closed vocabulary,
// like the span stage names, so dashboards and tests can match on them.
const (
	// EventShed marks a submission rejected by admission control (shed
	// watermark or full queue) before any job existed.
	EventShed = "admission_shed"
	// EventLease marks a mid-solve worker-lease renegotiation (the
	// compute budget resized this solve's width between iterations).
	EventLease = "lease_renegotiated"
	// EventEngineFallback marks an executor falling back from the
	// compiled engine to the map engine; the detail carries
	// Executor.EngineFallbackReason.
	EventEngineFallback = "engine_fallback"
	// EventWarmStart marks a warm-start store hit (detail: exact or
	// family bucket).
	EventWarmStart = "warmstart_hit"
	// EventWarmStartDimMismatch marks a stored warm-start vector skipped
	// because its dimension did not match the request's schedule.
	EventWarmStartDimMismatch = "warmstart_dim_mismatch"
	// EventCheckpoint marks one checkpoint file written mid-solve.
	EventCheckpoint = "checkpoint_write"
	// EventPanic marks a solver panic recovered into a failed job.
	EventPanic = "solver_panic"
	// EventWALRecovery marks a journal replay at startup.
	EventWALRecovery = "wal_recovery"
	// EventAnomalyCapture marks the stall/SLO watchdog snapshotting a
	// slow or stalled solve to disk.
	EventAnomalyCapture = "anomaly_capture"
)

// Event is one flight-recorder record.
type Event struct {
	// Seq is the ring-assigned monotone sequence number (1-based).
	Seq uint64 `json:"seq"`
	// TimeUnixMS is the wall-clock recording time.
	TimeUnixMS int64    `json:"time_unix_ms"`
	Severity   Severity `json:"severity"`
	// Kind is one of the Event* constants above.
	Kind string `json:"kind"`
	// JobID and SpecHash correlate the event with a job and its problem;
	// either may be empty (e.g. shed requests never got a job id).
	JobID    string `json:"job_id,omitempty"`
	SpecHash string `json:"spec_hash,omitempty"`
	// Detail is a short free-form human-readable elaboration.
	Detail string `json:"detail,omitempty"`
}

// EventRing is a fixed-capacity ring buffer of events, safe for
// concurrent use. All methods are nil-safe no-ops so instrumentation
// sites need no guards.
type EventRing struct {
	now func() time.Time

	mu      sync.Mutex
	buf     []Event
	head    int // index of the oldest event
	count   int
	seq     uint64
	dropped uint64
}

// DefaultEventRingSize is the capacity serving binaries use unless
// configured otherwise.
const DefaultEventRingSize = 1024

// NewEventRing returns a ring holding the most recent `capacity`
// events (minimum 1).
func NewEventRing(capacity int) *EventRing {
	return NewEventRingWithClock(capacity, time.Now)
}

// NewEventRingWithClock injects the wall clock (tests pass a fake so
// recorded timestamps are deterministic).
func NewEventRingWithClock(capacity int, now func() time.Time) *EventRing {
	if capacity < 1 {
		capacity = 1
	}
	return &EventRing{buf: make([]Event, capacity), now: now}
}

// Record appends one event, evicting the oldest when the ring is full.
// Seq and TimeUnixMS are assigned here; pass everything else.
func (r *EventRing) Record(sev Severity, kind, jobID, specHash, detail string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	e := Event{
		Seq:        r.seq,
		TimeUnixMS: r.now().UnixMilli(),
		Severity:   sev,
		Kind:       kind,
		JobID:      jobID,
		SpecHash:   specHash,
		Detail:     detail,
	}
	if r.count < len(r.buf) {
		r.buf[(r.head+r.count)%len(r.buf)] = e
		r.count++
		return
	}
	r.buf[r.head] = e
	r.head = (r.head + 1) % len(r.buf)
	r.dropped++
}

// Snapshot returns the resident events oldest-first. The slice is a
// copy; mutating it cannot corrupt the ring.
func (r *EventRing) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, r.count)
	for i := 0; i < r.count; i++ {
		out[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	return out
}

// SnapshotJob returns the resident events carrying the given job id,
// oldest-first.
func (r *EventRing) SnapshotJob(jobID string) []Event {
	var out []Event
	for _, e := range r.Snapshot() {
		if e.JobID == jobID {
			out = append(out, e)
		}
	}
	return out
}

// Len returns how many events are resident (≤ capacity).
func (r *EventRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Dropped returns how many events have been evicted to make room.
func (r *EventRing) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Seq returns the sequence number of the most recent event (0 when
// nothing was ever recorded).
func (r *EventRing) Seq() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// EventDumpVersion versions the WriteJSON envelope (and the on-disk
// events.json of anomaly captures) so tooling can detect format drift.
const EventDumpVersion = 1

// eventDump is the serialized envelope of WriteJSON.
type eventDump struct {
	Version int     `json:"version"`
	Dropped uint64  `json:"dropped"`
	Events  []Event `json:"events"`
}

// WriteJSON renders the ring's resident window as a versioned JSON
// envelope: {"version":1,"dropped":N,"events":[...]}. Used by the
// /debug/events handler and the anomaly-capture snapshot.
func (r *EventRing) WriteJSON(w io.Writer) error {
	dump := eventDump{Version: EventDumpVersion, Dropped: r.Dropped(), Events: r.Snapshot()}
	if dump.Events == nil {
		dump.Events = []Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	return enc.Encode(dump)
}

// ParseEventDump decodes a WriteJSON envelope (rasengan-inspect -events
// reads capture files and /debug/events bodies through it).
func ParseEventDump(data []byte) (events []Event, dropped uint64, err error) {
	var dump eventDump
	if err := json.Unmarshal(data, &dump); err != nil {
		return nil, 0, err
	}
	return dump.Events, dump.Dropped, nil
}

// EventScope binds a ring to one job's correlation ids so layers that
// know nothing about jobs (the core solver) can still record correlated
// events. A nil scope, or a scope over a nil ring, records nothing.
type EventScope struct {
	Ring     *EventRing
	JobID    string
	SpecHash string
}

// Event records one event under the scope's correlation ids.
func (s *EventScope) Event(sev Severity, kind, detail string) {
	if s == nil {
		return
	}
	s.Ring.Record(sev, kind, s.JobID, s.SpecHash, detail)
}
