package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// Chrome trace-event export: the recorded spans rendered in the Trace
// Event Format (the JSON that chrome://tracing, Perfetto, and speedscope
// load). Every span becomes one complete ("ph":"X") event; tracks map to
// thread ids with thread_name metadata so each optimizer start gets its
// own lane.

// traceEvent is one entry of the traceEvents array.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`            // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int32          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// tracePID is the single logical process all events report under.
const tracePID = 1

// WriteChromeTrace renders every closed span as Chrome trace-event JSON.
// Events are emitted in (track, start) order so the output is
// deterministic for a given span set; still-open spans are skipped.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	spans := r.Spans()
	order := make([]int, 0, len(spans))
	for i, s := range spans {
		if s.End >= 0 {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := spans[order[a]], spans[order[b]]
		if sa.Track != sb.Track {
			return sa.Track < sb.Track
		}
		if sa.Start != sb.Start {
			return sa.Start < sb.Start
		}
		// Parents open before children at equal timestamps; recording
		// order breaks remaining ties.
		return order[a] < order[b]
	})

	events := make([]traceEvent, 0, len(order)+len(r.TrackNames()))
	for tid, name := range r.TrackNames() {
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", Pid: tracePID, Tid: int32(tid),
			Args: map[string]any{"name": name},
		})
	}
	for _, i := range order {
		s := spans[i]
		ev := traceEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   durUS(s.Start),
			Dur:  durUS(s.End - s.Start),
			Pid:  tracePID,
			Tid:  s.Track,
		}
		if len(s.Attrs) > 0 {
			ev.Args = make(map[string]any, len(s.Attrs))
			for _, a := range s.Attrs {
				ev.Args[a.Key] = a.Val
			}
		}
		events = append(events, ev)
	}

	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	})
}

// WriteChromeTraceFile writes the trace to path (0644), creating or
// truncating it.
func (r *Recorder) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: create trace file: %w", err)
	}
	werr := r.WriteChromeTrace(f)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("obs: write trace: %w", werr)
	}
	if cerr != nil {
		return fmt.Errorf("obs: close trace file: %w", cerr)
	}
	return nil
}

// durUS converts a duration to trace-format microseconds.
func durUS(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e3
}
