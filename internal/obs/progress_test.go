package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestProgressCellFold verifies the monotone fold contract: Iteration
// counts publishes, BestEnergy never worsens, and the incumbent's
// ARG/ParamNorm stick with its energy while latest-value fields track
// every publish.
func TestProgressCellFold(t *testing.T) {
	c := NewProgressCell()
	if _, _, ok := c.Load(); ok {
		t.Fatal("empty cell reports a record")
	}

	c.Publish(Progress{Start: 0, Iter: 0, BestEnergy: -5, ARG: 0.5, ParamNorm: 1, Workers: 4})
	p, seq, ok := c.Load()
	if !ok || seq != 1 {
		t.Fatalf("after first publish: ok=%v seq=%d", ok, seq)
	}
	if p.Iteration != 1 || p.BestEnergy != -5 || p.ARG != 0.5 {
		t.Fatalf("first record folded wrong: %+v", p)
	}

	// A worse energy from another start must not move the incumbent.
	c.Publish(Progress{Start: 1, Iter: 0, BestEnergy: -3, ARG: 0.9, ParamNorm: 7, Workers: 2})
	p, seq, _ = c.Load()
	if seq != 2 || p.Iteration != 2 {
		t.Fatalf("iteration count not monotone: %+v (seq %d)", p, seq)
	}
	if p.BestEnergy != -5 || p.ARG != 0.5 || p.ParamNorm != 1 {
		t.Fatalf("worse publish moved the incumbent: %+v", p)
	}
	if p.Workers != 2 || p.Start != 1 {
		t.Fatalf("latest-value fields not taken: %+v", p)
	}

	// An improvement replaces the incumbent.
	c.Publish(Progress{Start: 1, Iter: 1, BestEnergy: -8, ARG: 0.1, ParamNorm: 3})
	p, _, _ = c.Load()
	if p.Iteration != 3 || p.BestEnergy != -8 || p.ARG != 0.1 || p.ParamNorm != 3 {
		t.Fatalf("improvement not folded: %+v", p)
	}
}

// TestProgressCellMonotoneUnderConcurrency hammers the cell from many
// publishers and asserts every observed snapshot is monotone in
// Iteration and non-increasing in BestEnergy — the invariant the SSE
// stream (and the CI smoke) relies on.
func TestProgressCellMonotoneUnderConcurrency(t *testing.T) {
	c := NewProgressCell()
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.Publish(Progress{Start: g, Iter: i, BestEnergy: float64(-i) - float64(g)*0.1})
			}
		}(g)
	}
	go func() { wg.Wait(); close(done) }()

	lastIter := 0
	lastBest := math.Inf(1)
	lastSeq := uint64(0)
	for {
		p, seq, ok := c.Load()
		if ok && seq != lastSeq {
			if p.Iteration < lastIter {
				t.Fatalf("iteration went backwards: %d after %d", p.Iteration, lastIter)
			}
			if p.BestEnergy > lastBest {
				t.Fatalf("best energy worsened: %v after %v", p.BestEnergy, lastBest)
			}
			lastIter, lastBest, lastSeq = p.Iteration, p.BestEnergy, seq
		}
		select {
		case <-done:
			if p, _, _ := c.Load(); p.Iteration != 800 {
				t.Fatalf("final iteration count %d, want 800", p.Iteration)
			}
			return
		default:
		}
	}
}

// TestProgressCellWait verifies the broadcast edge: a Wait channel taken
// before a publish is closed by it, and a fresh Wait blocks until the
// next one.
func TestProgressCellWait(t *testing.T) {
	c := NewProgressCell()
	ch := c.Wait()
	select {
	case <-ch:
		t.Fatal("Wait channel closed before any publish")
	default:
	}
	c.Publish(Progress{BestEnergy: 1})
	select {
	case <-ch:
	default:
		t.Fatal("Wait channel not closed by publish")
	}
	ch2 := c.Wait()
	select {
	case <-ch2:
		t.Fatal("fresh Wait channel already closed")
	default:
	}
}

// TestProgressCellNilSafe exercises every method on a nil cell.
func TestProgressCellNilSafe(t *testing.T) {
	var c *ProgressCell
	c.Publish(Progress{BestEnergy: 1})
	if _, _, ok := c.Load(); ok {
		t.Fatal("nil cell reports a record")
	}
	if ch := c.Wait(); ch != nil {
		t.Fatal("nil cell returned a non-nil wait channel")
	}
}

// TestProgressMarshalOmitsNaNARG checks the JSON encoding: ARG appears
// as "arg" only when an optimum was known (non-NaN).
func TestProgressMarshalOmitsNaNARG(t *testing.T) {
	withARG, err := json.Marshal(Progress{Iteration: 3, BestEnergy: -2, ARG: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(withARG), `"arg":0.25`) {
		t.Fatalf("arg missing from %s", withARG)
	}
	noARG, err := json.Marshal(Progress{Iteration: 3, BestEnergy: -2, ARG: math.NaN()})
	if err != nil {
		t.Fatalf("NaN ARG must not fail encoding: %v", err)
	}
	if strings.Contains(string(noARG), "arg") {
		t.Fatalf("NaN arg leaked into %s", noARG)
	}
	var back Progress
	if err := json.Unmarshal(withARG, &back); err != nil {
		t.Fatal(err)
	}
	if back.Iteration != 3 || back.BestEnergy != -2 {
		t.Fatalf("roundtrip lost fields: %+v", back)
	}
}
