// Package obs is the telemetry substrate of the solve stack: a
// lightweight, allocation-conscious span recorder that the pipeline
// stages (basis construction, Hamiltonian build, circuit compile,
// optimizer iterations, segment execution, sampling) report into, plus
// exporters that turn the recorded spans into Chrome trace-event JSON
// (trace.go) and per-stage duration aggregates for Prometheus
// histograms.
//
// Telemetry observes and never steers: a Recorder carries no state the
// solver reads back, so enabling it cannot reorder work or perturb RNG
// streams — solves stay bit-identical with telemetry on or off. Every
// method is safe on a nil *Recorder (a no-op), so instrumentation sites
// need no guards and a disabled pipeline pays only a nil receiver check.
package obs

import (
	"sync"
	"time"
)

// Canonical stage names used across the solve pipeline. The serving layer
// exposes them as the `stage` label of rasengan_stage_duration_seconds,
// so they form a small closed vocabulary rather than free-form strings.
const (
	// StageSolve is the root span of one full core.Solve call.
	StageSolve = "solve"
	// StageBasis is nullspace/homogeneous-basis construction (BuildBasis:
	// HNF nullspace, ternary kernel search, Algorithm 1 simplification).
	StageBasis = "basis"
	// StageHamiltonian is the transition-Hamiltonian pool and schedule
	// build (BuildSchedule: expansion rounds, pruning, early stop).
	StageHamiltonian = "hamiltonian"
	// StageCircuit is operator compilation and segmentation (NewExecutor).
	StageCircuit = "circuit"
	// StageIteration is one classical optimizer iteration.
	StageIteration = "iteration"
	// StageSegment is one simulator segment execution (evolution through
	// the segment's transition operators for every live input state).
	StageSegment = "segment"
	// StageSample is measurement: shot sampling plus readout error in the
	// sampled path, probability collapse in the exact path.
	StageSample = "sample"
	// StageFinalEval is the final distribution evaluation at the
	// optimizer's best parameters.
	StageFinalEval = "final_eval"
)

// AttrEngine is the span attribute key carrying the simulation engine
// ("map" or "compiled") on every StageSegment span, so traces of the two
// executor backends can be told apart and compared stage by stage.
const AttrEngine = "engine"

// Attr is one key/value annotation on a span.
type Attr struct {
	Key, Val string
}

// SpanID indexes a span within its Recorder; NoParent marks a root span.
type SpanID int32

// NoParent is the parent of top-level spans.
const NoParent SpanID = -1

// openEnd marks a started-but-unfinished span.
const openEnd = time.Duration(-1)

// Span is one recorded interval. Start and End are offsets on the
// recorder's monotonic clock (End == -1 while the span is open).
type Span struct {
	Name   string
	Track  int32
	Parent SpanID
	Start  time.Duration
	End    time.Duration
	Attrs  []Attr
}

// Duration returns End-Start, or 0 for a still-open span.
func (s Span) Duration() time.Duration {
	if s.End < 0 {
		return 0
	}
	return s.End - s.Start
}

// Recorder accumulates spans from any number of goroutines. Spans live in
// one growing slice (ids are indices), attrs ride the variadic slice the
// caller built, and the only lock is a short append-scope mutex, so a
// recording site costs one clock read, one lock, and one slice append.
type Recorder struct {
	now func() time.Duration

	mu     sync.Mutex
	spans  []Span
	tracks []string
}

// NewRecorder returns a recorder whose clock is monotonic time since
// creation.
func NewRecorder() *Recorder {
	origin := time.Now()
	return NewRecorderWithClock(func() time.Duration { return time.Since(origin) })
}

// NewRecorderWithClock injects the clock — tests pass a fake to make span
// intervals deterministic. now must be monotone non-decreasing and safe
// for concurrent use.
func NewRecorderWithClock(now func() time.Duration) *Recorder {
	return &Recorder{now: now, tracks: []string{"main"}}
}

// Enabled reports whether spans are being recorded (false on nil).
func (r *Recorder) Enabled() bool { return r != nil }

// Now returns the recorder's clock reading (0 on nil).
func (r *Recorder) Now() time.Duration {
	if r == nil {
		return 0
	}
	return r.now()
}

// Track allocates a new track (a horizontal lane in the trace viewer —
// one per concurrent strand, e.g. one per optimizer start) and returns
// its id. Track 0 always exists and is named "main". Nil recorders
// return 0.
func (r *Recorder) Track(name string) int32 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tracks = append(r.tracks, name)
	return int32(len(r.tracks) - 1)
}

// Start opens a span and returns its id for End. Attrs are retained as
// given; callers must not mutate them afterwards.
func (r *Recorder) Start(name string, track int32, parent SpanID, attrs ...Attr) SpanID {
	if r == nil {
		return NoParent
	}
	start := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans = append(r.spans, Span{Name: name, Track: track, Parent: parent, Start: start, End: openEnd, Attrs: attrs})
	return SpanID(len(r.spans) - 1)
}

// End closes the span. Ending an already-closed span or an invalid id is
// a no-op, so defer-heavy call sites need no bookkeeping.
func (r *Recorder) End(id SpanID) {
	if r == nil || id < 0 {
		return
	}
	end := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if int(id) >= len(r.spans) || r.spans[id].End >= 0 {
		return
	}
	r.spans[id].End = end
}

// Record appends an already-measured span — used when the boundary is
// only known in arrears, like optimizer iterations delimited by their
// completion callbacks.
func (r *Recorder) Record(name string, track int32, parent SpanID, start, end time.Duration, attrs ...Attr) SpanID {
	if r == nil {
		return NoParent
	}
	if end < start {
		end = start
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans = append(r.spans, Span{Name: name, Track: track, Parent: parent, Start: start, End: end, Attrs: attrs})
	return SpanID(len(r.spans) - 1)
}

// Len returns the number of recorded spans.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Spans returns a copy of all recorded spans in recording order.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}

// TrackNames returns the registered track names, index == track id.
func (r *Recorder) TrackNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.tracks...)
}

// StageTotals sums the duration of every closed span per stage name. When
// tracks are given, only spans on those tracks count — a solve that
// shares a recorder with concurrent solves passes its own track set to
// aggregate just its spans.
func (r *Recorder) StageTotals(tracks ...int32) map[string]time.Duration {
	if r == nil {
		return nil
	}
	var want map[int32]bool
	if len(tracks) > 0 {
		want = make(map[int32]bool, len(tracks))
		for _, t := range tracks {
			want[t] = true
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	totals := make(map[string]time.Duration)
	for i := range r.spans {
		s := &r.spans[i]
		if s.End < 0 {
			continue
		}
		if want != nil && !want[s.Track] {
			continue
		}
		totals[s.Name] += s.End - s.Start
	}
	return totals
}
