package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic monotone clock for tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Duration
}

func (c *fakeClock) now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t += d
	c.mu.Unlock()
}

func TestStartEndWithInjectedClock(t *testing.T) {
	clk := &fakeClock{}
	r := NewRecorderWithClock(clk.now)

	root := r.Start(StageSolve, 0, NoParent)
	clk.advance(10 * time.Millisecond)
	child := r.Start(StageBasis, 0, root, Attr{Key: "problem", Val: "FLP_1"})
	clk.advance(5 * time.Millisecond)
	r.End(child)
	clk.advance(20 * time.Millisecond)
	r.End(root)

	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != StageSolve || spans[0].Start != 0 || spans[0].End != 35*time.Millisecond {
		t.Errorf("root span = %+v", spans[0])
	}
	if spans[1].Name != StageBasis || spans[1].Start != 10*time.Millisecond || spans[1].End != 15*time.Millisecond {
		t.Errorf("child span = %+v", spans[1])
	}
	if spans[1].Parent != root {
		t.Errorf("child parent = %d, want %d", spans[1].Parent, root)
	}
	if len(spans[1].Attrs) != 1 || spans[1].Attrs[0].Key != "problem" {
		t.Errorf("child attrs = %v", spans[1].Attrs)
	}
	if d := spans[1].Duration(); d != 5*time.Millisecond {
		t.Errorf("child duration = %v, want 5ms", d)
	}
}

func TestEndIsIdempotentAndBoundsChecked(t *testing.T) {
	clk := &fakeClock{}
	r := NewRecorderWithClock(clk.now)
	id := r.Start("x", 0, NoParent)
	clk.advance(time.Millisecond)
	r.End(id)
	clk.advance(time.Hour)
	r.End(id)        // second End must not move the boundary
	r.End(SpanID(5)) // out of range: no-op
	r.End(NoParent)  // invalid: no-op
	if got := r.Spans()[0].End; got != time.Millisecond {
		t.Errorf("End after re-End = %v, want 1ms", got)
	}
}

func TestOpenSpansExcludedFromTotals(t *testing.T) {
	clk := &fakeClock{}
	r := NewRecorderWithClock(clk.now)
	open := r.Start("open", 0, NoParent)
	r.Record("closed", 0, NoParent, 0, 7*time.Millisecond)
	totals := r.StageTotals()
	if _, ok := totals["open"]; ok {
		t.Error("open span leaked into StageTotals")
	}
	if totals["closed"] != 7*time.Millisecond {
		t.Errorf("closed total = %v, want 7ms", totals["closed"])
	}
	if d := r.Spans()[0].Duration(); d != 0 {
		t.Errorf("open span duration = %v, want 0", d)
	}
	r.End(open)
}

func TestRecordClampsInvertedInterval(t *testing.T) {
	r := NewRecorderWithClock((&fakeClock{}).now)
	r.Record("backwards", 0, NoParent, 10*time.Millisecond, 2*time.Millisecond)
	s := r.Spans()[0]
	if s.End != s.Start {
		t.Errorf("inverted interval not clamped: %+v", s)
	}
}

func TestStageTotalsFiltersByTrack(t *testing.T) {
	r := NewRecorderWithClock((&fakeClock{}).now)
	t1 := r.Track("start 0")
	t2 := r.Track("start 1")
	r.Record(StageIteration, t1, NoParent, 0, 3*time.Millisecond)
	r.Record(StageIteration, t2, NoParent, 0, 5*time.Millisecond)
	r.Record(StageSegment, t1, NoParent, 0, 2*time.Millisecond)

	all := r.StageTotals()
	if all[StageIteration] != 8*time.Millisecond {
		t.Errorf("unfiltered iteration total = %v, want 8ms", all[StageIteration])
	}
	only1 := r.StageTotals(t1)
	if only1[StageIteration] != 3*time.Millisecond || only1[StageSegment] != 2*time.Millisecond {
		t.Errorf("track-filtered totals = %v", only1)
	}
	if _, ok := r.StageTotals(t2)[StageSegment]; ok {
		t.Error("track filter leaked a foreign span")
	}
}

func TestTrackAllocation(t *testing.T) {
	r := NewRecorder()
	if got := r.Track("a"); got != 1 {
		t.Errorf("first allocated track = %d, want 1", got)
	}
	if got := r.Track("b"); got != 2 {
		t.Errorf("second allocated track = %d, want 2", got)
	}
	names := r.TrackNames()
	if len(names) != 3 || names[0] != "main" || names[2] != "b" {
		t.Errorf("track names = %v", names)
	}
}

// TestNilRecorderIsSafe locks in the contract instrumentation sites rely
// on: a disabled pipeline calls every method on nil without guards.
func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Error("nil recorder reports Enabled")
	}
	if r.Now() != 0 {
		t.Error("nil Now != 0")
	}
	if id := r.Start("x", r.Track("t"), NoParent); id != NoParent {
		t.Errorf("nil Start = %d, want NoParent", id)
	}
	r.End(0)
	r.Record("x", 0, NoParent, 0, time.Second)
	if r.Len() != 0 || r.Spans() != nil || r.StageTotals() != nil || r.TrackNames() != nil {
		t.Error("nil recorder accumulated state")
	}
}

// TestConcurrentRecording exercises the recorder from many goroutines;
// run under -race it proves the locking discipline.
func TestConcurrentRecording(t *testing.T) {
	r := NewRecorder()
	const goroutines = 8
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			track := r.Track("worker")
			for i := 0; i < perG; i++ {
				id := r.Start(StageSegment, track, NoParent)
				r.End(id)
				r.Record(StageSample, track, id, r.Now(), r.Now())
			}
		}()
	}
	wg.Wait()
	if got := r.Len(); got != goroutines*perG*2 {
		t.Errorf("recorded %d spans, want %d", got, goroutines*perG*2)
	}
	totals := r.StageTotals()
	if _, ok := totals[StageSegment]; !ok {
		t.Error("no segment totals after concurrent recording")
	}
}

// TestConcurrentRecordingAcrossTracks drives Start/End/Record from many
// goroutines that each allocate their own track, interleaved with
// readers taking Spans/StageTotals/TrackNames snapshots — under -race
// this proves writers and readers never share unsynchronized state.
func TestConcurrentRecordingAcrossTracks(t *testing.T) {
	r := NewRecorder()
	const goroutines = 8
	const perG = 100
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = r.Spans()
					_ = r.StageTotals()
					_ = r.TrackNames()
				}
			}
		}()
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			track := r.Track(fmt.Sprintf("worker-%d", g))
			for i := 0; i < perG; i++ {
				id := r.Start(StageSegment, track, NoParent)
				r.Record(StageSample, track, id, r.Now(), r.Now())
				r.End(id)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := r.Len(); got != goroutines*perG*2 {
		t.Errorf("recorded %d spans, want %d", got, goroutines*perG*2)
	}
	names := r.TrackNames()
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		seen[n] = true
	}
	for g := 0; g < goroutines; g++ {
		if !seen[fmt.Sprintf("worker-%d", g)] {
			t.Errorf("track worker-%d missing from %v", g, names)
		}
	}
}

// TestSpansSnapshotIsolation verifies Spans returns an independent copy:
// mutating the returned slice must not corrupt the recorder, and spans
// recorded after the snapshot must not appear in it.
func TestSpansSnapshotIsolation(t *testing.T) {
	r := NewRecorder()
	id := r.Start(StageBasis, 0, NoParent)
	r.End(id)
	snap := r.Spans()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d spans, want 1", len(snap))
	}
	snap[0].Name = "mangled"
	if got := r.Spans()[0].Name; got != StageBasis {
		t.Fatalf("snapshot aliases recorder storage: name became %q", got)
	}
	r.Record(StageSample, 0, NoParent, r.Now(), r.Now())
	if len(snap) != 1 {
		t.Fatalf("earlier snapshot grew to %d spans", len(snap))
	}
	if r.Len() != 2 {
		t.Fatalf("recorder has %d spans, want 2", r.Len())
	}
}
