package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// decodeTrace parses writer output back into the generic trace shape.
func decodeTrace(t *testing.T, data []byte) []map[string]any {
	t.Helper()
	var doc struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	return doc.TraceEvents
}

func TestWriteChromeTrace(t *testing.T) {
	clk := &fakeClock{}
	r := NewRecorderWithClock(clk.now)
	track := r.Track("start 0")
	root := r.Start(StageSolve, 0, NoParent)
	clk.advance(2 * time.Millisecond)
	r.Record(StageIteration, track, root, time.Millisecond, 2*time.Millisecond,
		Attr{Key: "iter", Val: "0"})
	clk.advance(time.Millisecond)
	r.End(root)
	open := r.Start("never-ends", 0, root)
	_ = open

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, buf.Bytes())

	var metas, complete int
	byName := map[string]map[string]any{}
	for _, ev := range events {
		switch ev["ph"] {
		case "M":
			metas++
		case "X":
			complete++
			byName[ev["name"].(string)] = ev
		}
	}
	if metas != 2 { // "main" + "start 0"
		t.Errorf("thread_name metadata events = %d, want 2", metas)
	}
	if complete != 2 {
		t.Errorf("complete events = %d, want 2 (open span must be skipped)", complete)
	}
	it, ok := byName[StageIteration]
	if !ok {
		t.Fatal("iteration event missing")
	}
	if it["ts"].(float64) != 1000 || it["dur"].(float64) != 1000 {
		t.Errorf("iteration ts/dur = %v/%v, want 1000/1000 µs", it["ts"], it["dur"])
	}
	if args, ok := it["args"].(map[string]any); !ok || args["iter"] != "0" {
		t.Errorf("iteration args = %v", it["args"])
	}
	if byName[StageSolve]["dur"].(float64) != 3000 {
		t.Errorf("solve dur = %v, want 3000 µs", byName[StageSolve]["dur"])
	}
}

// TestWriteChromeTraceDeterministic asserts byte-identical output for the
// same span set regardless of recording interleaving concerns — events
// are sorted by (track, start).
func TestWriteChromeTraceDeterministic(t *testing.T) {
	build := func(order []int) *Recorder {
		r := NewRecorderWithClock((&fakeClock{}).now)
		tr := r.Track("t")
		// Record the same three spans in different call orders.
		spans := []struct {
			name       string
			track      int32
			start, end time.Duration
		}{
			{"a", 0, 0, time.Millisecond},
			{"b", tr, 0, 2 * time.Millisecond},
			{"c", tr, 3 * time.Millisecond, 4 * time.Millisecond},
		}
		for _, i := range order {
			s := spans[i]
			r.Record(s.name, s.track, NoParent, s.start, s.end)
		}
		return r
	}
	var out1, out2 bytes.Buffer
	if err := build([]int{0, 1, 2}).WriteChromeTrace(&out1); err != nil {
		t.Fatal(err)
	}
	if err := build([]int{2, 1, 0}).WriteChromeTrace(&out2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Errorf("trace output depends on recording order:\n%s\nvs\n%s", out1.String(), out2.String())
	}
}

func TestWriteChromeTraceFile(t *testing.T) {
	r := NewRecorder()
	id := r.Start(StageBasis, 0, NoParent)
	r.End(id)
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := r.WriteChromeTraceFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, data)
	if len(events) == 0 {
		t.Error("trace file has no events")
	}
}

func TestWriteChromeTraceNilRecorder(t *testing.T) {
	var r *Recorder
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if events := decodeTrace(t, buf.Bytes()); len(events) != 0 {
		t.Errorf("nil recorder emitted %d events", len(events))
	}
}
