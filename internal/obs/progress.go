package obs

import (
	"encoding/json"
	"math"
	"sync"
)

// Live solve progress. A ProgressCell is the bridge between the solver's
// optimizer-iteration hook and anything that wants to watch a running
// solve (the service's job view, the SSE event stream, the stall
// watchdog): the solver folds one record per completed iteration into
// the cell, and observers either snapshot the latest state (Load) or
// block for the next publication (Wait). Like the span recorder,
// progress observes and never steers — the solver writes into the cell
// and reads nothing back, so enabling it cannot change a result.

// Progress is the folded live state of one solve. The cell maintains the
// fold: Iteration counts completed optimizer iterations across every
// concurrent multi-start (monotone non-decreasing), and
// BestEnergy/ARG/ParamNorm track the incumbent best across starts
// (BestEnergy is non-increasing). Start/Iter identify the iteration that
// was folded in last; Workers/CheckpointSeq/ElapsedMS are the latest
// observed values.
type Progress struct {
	// Iteration is the total number of completed optimizer iterations
	// across all multi-starts — monotone by construction.
	Iteration int `json:"iteration"`
	// Start and Iter locate the most recently folded iteration: the
	// multi-start index and its 0-based iteration counter.
	Start int `json:"start"`
	Iter  int `json:"iter"`
	// BestEnergy is the best objective expectation seen by any start so
	// far — non-increasing by construction.
	BestEnergy float64 `json:"best_energy"`
	// ARG is the running approximation-ratio gap of BestEnergy against
	// the known optimum; NaN when no optimum was supplied (and then
	// omitted from the JSON encoding — NaN has no JSON representation).
	ARG float64 `json:"-"`
	// ParamNorm is the L2 norm of the incumbent best evolution-time
	// vector (the one BestEnergy belongs to).
	ParamNorm float64 `json:"param_norm"`
	// Workers is the solve's current worker-lease width — how many pool
	// workers its kernels may claim right now (renegotiated by the
	// serving layer's compute budget at iteration boundaries).
	Workers int `json:"workers,omitempty"`
	// CheckpointSeq counts checkpoint files written so far (0 when
	// checkpointing is off).
	CheckpointSeq uint64 `json:"checkpoint_seq,omitempty"`
	// ElapsedMS is wall time since the publishing start's optimizer
	// began — the only nondeterministic field.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// MarshalJSON encodes the record, including "arg" only when ARG is a
// number (NaN marks "no optimum known" and is unrepresentable in JSON).
func (p Progress) MarshalJSON() ([]byte, error) {
	type plain Progress // method-free shadow: embedding Progress would recurse
	out := struct {
		plain
		ARGOut *float64 `json:"arg,omitempty"`
	}{plain: plain(p)}
	if !math.IsNaN(p.ARG) {
		arg := p.ARG
		out.ARGOut = &arg
	}
	return json.Marshal(out)
}

// ProgressCell is a lock-cheap single-value cell holding the folded
// Progress of one solve. Publishing costs one short mutex hold plus one
// small channel allocation (the broadcast edge); there is no per-
// subscriber fan-out state, so any number of watchers can Wait on the
// same cell without the publisher knowing. All methods are nil-safe.
type ProgressCell struct {
	mu  sync.Mutex
	p   Progress
	seq uint64
	ch  chan struct{} // closed on every publish, then replaced
}

// NewProgressCell returns an empty cell (seq 0, nothing published).
func NewProgressCell() *ProgressCell {
	return &ProgressCell{ch: make(chan struct{})}
}

// Publish folds one completed-iteration record into the cell and wakes
// every Wait-er. The fold keeps the monotone contract: Iteration
// increments by one per call regardless of rec.Iteration, and
// BestEnergy/ARG/ParamNorm only move when rec.BestEnergy improves on
// the incumbent (ties keep the incumbent). Workers, CheckpointSeq,
// ElapsedMS, Start, and Iter always take the latest value.
func (c *ProgressCell) Publish(rec Progress) {
	if c == nil {
		return
	}
	c.mu.Lock()
	prev := c.p
	rec.Iteration = prev.Iteration + 1
	if c.seq > 0 && !(rec.BestEnergy < prev.BestEnergy) {
		rec.BestEnergy = prev.BestEnergy
		rec.ARG = prev.ARG
		rec.ParamNorm = prev.ParamNorm
	}
	c.p = rec
	c.seq++
	ch := c.ch
	c.ch = make(chan struct{})
	c.mu.Unlock()
	close(ch)
}

// Load returns the latest folded record and its publication sequence
// number; ok is false (and the record zero) before the first Publish.
// On a nil cell it returns ok == false.
func (c *ProgressCell) Load() (p Progress, seq uint64, ok bool) {
	if c == nil {
		return Progress{}, 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.p, c.seq, c.seq > 0
}

// Wait returns a channel closed at the next Publish. Callers re-call
// Wait after each wakeup to observe the following publish; combining
// Wait with Load gives lossy-but-fresh streaming (a slow consumer skips
// intermediate records instead of buffering them). A nil cell returns
// nil, which blocks forever in a select.
func (c *ProgressCell) Wait() <-chan struct{} {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ch
}
