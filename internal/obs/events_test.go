package obs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

func testRing(capacity int) *EventRing {
	tick := time.Unix(1700000000, 0)
	var mu sync.Mutex
	return NewEventRingWithClock(capacity, func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		tick = tick.Add(time.Millisecond)
		return tick
	})
}

// TestEventRingEviction fills a small ring past capacity and checks the
// window holds the newest events, oldest first, with eviction counted.
func TestEventRingEviction(t *testing.T) {
	r := testRing(3)
	for i := 1; i <= 5; i++ {
		r.Record(SevInfo, EventCheckpoint, fmt.Sprintf("job-%d", i), "", "")
	}
	if r.Len() != 3 || r.Dropped() != 2 || r.Seq() != 5 {
		t.Fatalf("len=%d dropped=%d seq=%d", r.Len(), r.Dropped(), r.Seq())
	}
	snap := r.Snapshot()
	for i, e := range snap {
		wantSeq := uint64(3 + i)
		if e.Seq != wantSeq || e.JobID != fmt.Sprintf("job-%d", wantSeq) {
			t.Fatalf("snapshot[%d] = %+v, want seq %d", i, e, wantSeq)
		}
	}
	// Snapshot is a copy: mutating it cannot corrupt the ring.
	snap[0].JobID = "mangled"
	if r.Snapshot()[0].JobID == "mangled" {
		t.Fatal("snapshot aliases ring storage")
	}
}

// TestEventRingSnapshotJob filters the window by job id.
func TestEventRingSnapshotJob(t *testing.T) {
	r := testRing(8)
	r.Record(SevInfo, EventWarmStart, "job-1", "h1", "")
	r.Record(SevWarn, EventShed, "", "h2", "")
	r.Record(SevError, EventPanic, "job-1", "h1", "boom")
	got := r.SnapshotJob("job-1")
	if len(got) != 2 || got[0].Kind != EventWarmStart || got[1].Kind != EventPanic {
		t.Fatalf("SnapshotJob = %+v", got)
	}
}

// TestEventDumpRoundtrip checks WriteJSON → ParseEventDump fidelity,
// including the version and dropped fields of the envelope.
func TestEventDumpRoundtrip(t *testing.T) {
	r := testRing(2)
	r.Record(SevWarn, EventEngineFallback, "job-9", "hash", "noisy device")
	r.Record(SevInfo, EventLease, "job-9", "hash", "width 8 -> 4")
	r.Record(SevInfo, EventLease, "job-9", "hash", "width 4 -> 8")

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"version":1`)) {
		t.Fatalf("dump lacks version: %s", buf.Bytes())
	}
	events, dropped, err := ParseEventDump(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 || len(events) != 2 {
		t.Fatalf("parsed dropped=%d events=%d", dropped, len(events))
	}
	if events[0].Kind != EventLease || events[0].Detail != "width 8 -> 4" || events[0].TimeUnixMS == 0 {
		t.Fatalf("parsed event mangled: %+v", events[0])
	}

	// An empty ring must still produce a valid envelope with events:[].
	empty := testRing(2)
	buf.Reset()
	if err := empty.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"events":[]`)) {
		t.Fatalf("empty dump: %s", buf.Bytes())
	}
}

// TestEventRingConcurrent hammers Record/Snapshot from many goroutines
// (run under -race) and checks totals afterwards.
func TestEventRingConcurrent(t *testing.T) {
	r := NewEventRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(SevInfo, EventCheckpoint, fmt.Sprintf("job-%d", g), "", "")
				if i%10 == 0 {
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if r.Seq() != 800 || r.Len() != 64 || r.Dropped() != 800-64 {
		t.Fatalf("seq=%d len=%d dropped=%d", r.Seq(), r.Len(), r.Dropped())
	}
	snap := r.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i].Seq != snap[i-1].Seq+1 {
			t.Fatalf("snapshot not contiguous at %d: %d then %d", i, snap[i-1].Seq, snap[i].Seq)
		}
	}
}

// TestEventScopeNilSafe exercises nil scopes and scopes over nil rings.
func TestEventScopeNilSafe(t *testing.T) {
	var s *EventScope
	s.Event(SevInfo, EventCheckpoint, "no-op")
	(&EventScope{}).Event(SevInfo, EventCheckpoint, "no-op")

	r := testRing(4)
	scope := &EventScope{Ring: r, JobID: "job-7", SpecHash: "abc"}
	scope.Event(SevWarn, EventEngineFallback, "detail")
	got := r.Snapshot()
	if len(got) != 1 || got[0].JobID != "job-7" || got[0].SpecHash != "abc" || got[0].Severity != SevWarn {
		t.Fatalf("scope event mangled: %+v", got)
	}
}

// TestNilEventRingIsSafe exercises every method on a nil ring.
func TestNilEventRingIsSafe(t *testing.T) {
	var r *EventRing
	r.Record(SevInfo, EventCheckpoint, "", "", "")
	if r.Snapshot() != nil || r.SnapshotJob("x") != nil {
		t.Fatal("nil ring returned events")
	}
	if r.Len() != 0 || r.Dropped() != 0 || r.Seq() != 0 {
		t.Fatal("nil ring reports state")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}
