package service

import (
	"math"
	"sync"
)

// admissionEstimator derives Retry-After hints from observed service
// times. It keeps an EWMA of per-job executor occupancy; a rejected
// client is told to come back once the current backlog has plausibly
// drained: ewma × (queued+1) / executors, clamped to [1, 60] seconds.
// Before any job has completed the estimate defaults to one second —
// the old hardcoded hint — so cold starts behave like the previous
// design and warm servers report their real drain rate.
type admissionEstimator struct {
	mu      sync.Mutex
	ewmaSec float64
	seeded  bool
}

// admissionAlpha is the EWMA smoothing factor: ~last 10 jobs dominate.
const admissionAlpha = 0.2

// observe records one job's executor occupancy in seconds.
func (a *admissionEstimator) observe(sec float64) {
	if sec < 0 || math.IsNaN(sec) || math.IsInf(sec, 0) {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.seeded {
		a.ewmaSec = sec
		a.seeded = true
		return
	}
	a.ewmaSec = admissionAlpha*sec + (1-admissionAlpha)*a.ewmaSec
}

// estimate returns the smoothed per-job service time in seconds.
func (a *admissionEstimator) estimate() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.seeded {
		return 1
	}
	return a.ewmaSec
}

// retryAfter computes the whole-second Retry-After hint for a client
// rejected while `queued` jobs occupy the queue and `executors` workers
// drain it.
func (a *admissionEstimator) retryAfter(queued, executors int) int {
	if executors < 1 {
		executors = 1
	}
	if queued < 0 {
		queued = 0
	}
	sec := a.estimate() * float64(queued+1) / float64(executors)
	hint := int(math.Ceil(sec))
	if hint < 1 {
		hint = 1
	}
	if hint > 60 {
		hint = 60
	}
	return hint
}
