package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"rasengan/internal/problems"
)

// reorderJSONKeys round-trips a JSON object through a Go map, which
// rewrites it with sorted keys — a semantically identical but byte-wise
// different wire spelling.
func reorderJSONKeys(t *testing.T, data []byte) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("reorder: %v", err)
	}
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("reorder: %v", err)
	}
	return out
}

// TestCacheKeyInlineCanonicalization is the cache's metamorphic relation
// for inline problems: any wire spelling of the same instance — reordered
// object keys, different whitespace — must map to one cache entry, and a
// genuinely different instance must not.
func TestCacheKeyInlineCanonicalization(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	inline, err := problems.ToJSON(problems.Benchmark{Family: "FLP", Scale: 1}.Generate(2))
	if err != nil {
		t.Fatal(err)
	}
	req := func(problem []byte) string {
		return fmt.Sprintf(`{"spec":{"problem":%s},"config":{"seed":1,"max_iter":25},"wait_ms":60000}`, problem)
	}

	code1, sr1, _ := postSolve(t, ts, req(inline))
	if code1 != http.StatusOK || sr1.Status != StatusDone {
		t.Fatalf("first solve: code %d, status %s, error %q", code1, sr1.Status, sr1.Error)
	}
	if sr1.Cached {
		t.Fatal("first solve reported cached")
	}

	// Same instance, keys reordered: must hit the same entry and return
	// the identical bytes.
	code2, sr2, _ := postSolve(t, ts, req(reorderJSONKeys(t, inline)))
	if code2 != http.StatusOK || !sr2.Cached {
		t.Fatalf("key-reordered spelling missed the cache: code %d, cached %v", code2, sr2.Cached)
	}
	if !bytes.Equal(sr1.Result, sr2.Result) {
		t.Fatalf("cache returned different bytes for equivalent spellings:\n%s\n%s", sr1.Result, sr2.Result)
	}

	// A canonically distinct instance (different generator case) must
	// miss: distinct problems may never alias to one key.
	other, err := problems.ToJSON(problems.Benchmark{Family: "FLP", Scale: 1}.Generate(3))
	if err != nil {
		t.Fatal(err)
	}
	code3, sr3, _ := postSolve(t, ts, req(other))
	if code3 != http.StatusOK || sr3.Status != StatusDone {
		t.Fatalf("distinct solve: code %d, status %s", code3, sr3.Status)
	}
	if sr3.Cached {
		t.Fatal("canonically distinct instance was served from the cache")
	}
}

// TestCacheKeyConfigDefaults: a config with defaults spelled out and one
// with them omitted are the same canonical config, hence one cache entry.
func TestCacheKeyConfigDefaults(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := `{"family":"FLP","scale":1,"case":0}`

	code1, sr1, _ := postSolve(t, ts,
		fmt.Sprintf(`{"spec":%s,"config":{"seed":0,"max_iter":100,"shots":0},"wait_ms":120000}`, spec))
	if code1 != http.StatusOK || sr1.Status != StatusDone {
		t.Fatalf("explicit-defaults solve: code %d, status %s, error %q", code1, sr1.Status, sr1.Error)
	}
	code2, sr2, _ := postSolve(t, ts, fmt.Sprintf(`{"spec":%s,"wait_ms":120000}`, spec))
	if code2 != http.StatusOK || !sr2.Cached {
		t.Fatalf("omitted-defaults config missed the cache: code %d, cached %v", code2, sr2.Cached)
	}
	if !bytes.Equal(sr1.Result, sr2.Result) {
		t.Fatal("explicit and omitted defaults returned different bytes")
	}

	// A config that actually differs must miss.
	code3, sr3, _ := postSolve(t, ts,
		fmt.Sprintf(`{"spec":%s,"config":{"seed":5},"wait_ms":120000}`, spec))
	if code3 != http.StatusOK || sr3.Cached {
		t.Fatalf("different seed hit the cache: code %d, cached %v", code3, sr3.Cached)
	}
}

// TestCacheKeyGeneratorVsInline: a generator reference and the inline
// serialization of the instance it generates are deliberately distinct
// cache keys (canonicalization normalizes spelling, not provenance) —
// pinned here so the invariant is explicit rather than accidental.
func TestCacheKeyGeneratorVsInline(t *testing.T) {
	genSpec := &problems.Spec{Family: "FLP", Scale: 1, Case: 0}
	h1, err := genSpec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	inline, err := problems.ToJSON(problems.Benchmark{Family: "FLP", Scale: 1}.Generate(0))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := (&problems.Spec{Problem: inline}).Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h2 {
		t.Fatal("generator reference and inline instance unexpectedly share a hash; if canonicalization now resolves generators, update the cache docs")
	}
}
