package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"rasengan/internal/core"
	"rasengan/internal/device"
	"rasengan/internal/metrics"
	"rasengan/internal/obs"
	"rasengan/internal/parallel"
	"rasengan/internal/problems"
)

// SolveFunc runs one solve. The default implementation calls core.Solve;
// tests substitute a stub to control timing and results.
type SolveFunc func(ctx context.Context, p *problems.Problem, opts core.Options) (*core.Result, error)

// Config sizes the service. Zero values select the documented defaults.
type Config struct {
	// QueueCapacity bounds how many accepted jobs may wait for an
	// executor (default 64). A full queue answers 429.
	QueueCapacity int
	// Executors is how many jobs run concurrently (default 2). Each
	// executing solve additionally fans its inner loops across the shared
	// internal/parallel pool, so this bounds jobs, not cores.
	Executors int
	// WorkerBudget is the total compute budget leased out across
	// concurrently executing solves (default: the parallel package's
	// worker count). Each executing job holds a lease; the waterfilling
	// scheduler grants 1 job the whole budget and N jobs ~budget/N each,
	// renegotiated at optimizer-iteration boundaries. Lease width never
	// changes results — the parallel primitives are bit-identical at any
	// width — it only stops N jobs from oversubscribing the cores N-fold.
	WorkerBudget int
	// MaxBatch caps the item count of POST /v1/solve/batch (default 16).
	MaxBatch int
	// ShedWatermark, in (0,1), starts shedding new work once queued plus
	// reserved slots reach that fraction of QueueCapacity, keeping
	// headroom for retries and coalesced bursts. 0 (or ≥1) disables
	// shedding: only a literally full queue rejects.
	ShedWatermark float64
	// CacheEntries bounds the result cache (default 256); 0 keeps the
	// default, negative disables caching.
	CacheEntries int
	// DefaultTimeout caps a job's time from acceptance to completion
	// when the request does not set timeout_ms (default 60s).
	DefaultTimeout time.Duration
	// MaxTimeout caps the per-request timeout_ms (default 5m).
	MaxTimeout time.Duration
	// MaxIter caps the per-request optimizer iteration budget
	// (default 300).
	MaxIter int
	// MaxVars rejects problems wider than this many variables
	// (default 40 — sparse-simulator-friendly; raise for bigger
	// deployments).
	MaxVars int
	// JobRetention bounds how many terminal jobs stay queryable via
	// GET /v1/jobs (default 1024).
	JobRetention int
	// DataDir, when non-empty, turns on the durability layer: accepted
	// jobs are journaled to a WAL under this directory, result payloads
	// land in a content-addressed blob store, and on startup the journal
	// replays — terminal jobs come back queryable, interrupted jobs are
	// re-enqueued under their original ids, and the result cache is
	// rehydrated from blobs. The directory also holds the warm-start
	// parameter store. Empty keeps the server fully in-memory.
	// Servers with a DataDir must be built with Open (New panics on a
	// persistence failure).
	DataDir string
	// WarmStartCapacity bounds the warm-start parameter store (default
	// 4096 vectors; only meaningful with DataDir set).
	WarmStartCapacity int
	// Engine is the server-wide execution engine (core.EngineMap or
	// core.EngineCompiled; empty = core default) applied to every solve.
	// It is deliberately not part of the request schema or the cache key:
	// the engines are bit-identical, so one cached payload serves both.
	Engine string
	// Logger receives structured job-lifecycle records (accepted, running,
	// done/failed/cancelled) with job_id/spec_hash/stage fields. Nil
	// discards them; the serving binary passes a JSON handler.
	Logger *slog.Logger
	// EventRingSize bounds the flight-recorder event ring (default
	// obs.DefaultEventRingSize; the ring keeps the most recent N events).
	EventRingSize int
	// MaxEventStreams bounds concurrent GET /v1/jobs/{id}/events SSE
	// subscribers across all jobs (default 32); excess requests get 503.
	MaxEventStreams int
	// SSEHeartbeat is the idle keep-alive interval of the SSE stream
	// (default 15s; tests shrink it).
	SSEHeartbeat time.Duration
	// StallWindow, when positive, arms the per-job stall watchdog: a
	// running solve that publishes no iteration progress for this long is
	// snapshotted into the capture directory (reason "stall"). 0 disables.
	StallWindow time.Duration
	// SolveSLO, when positive, is the solve-latency SLO: a solve still
	// running past it is snapshotted once (reason "slo"). 0 disables.
	SolveSLO time.Duration
	// CaptureDir is where anomaly captures land, one directory per job id.
	// Empty defaults to DataDir/captures when DataDir is set; with neither,
	// the watchdog still counts and records anomalies but writes no files.
	CaptureDir string
	// Solve substitutes the solver implementation (tests only).
	Solve SolveFunc
}

func (c Config) withDefaults() Config {
	if c.QueueCapacity == 0 {
		c.QueueCapacity = 64
	}
	if c.Executors == 0 {
		c.Executors = 2
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxIter == 0 {
		c.MaxIter = 300
	}
	if c.MaxVars == 0 {
		c.MaxVars = 40
	}
	if c.JobRetention == 0 {
		c.JobRetention = 1024
	}
	if c.WorkerBudget == 0 {
		c.WorkerBudget = parallel.Workers()
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 16
	}
	if c.EventRingSize == 0 {
		c.EventRingSize = obs.DefaultEventRingSize
	}
	if c.MaxEventStreams == 0 {
		c.MaxEventStreams = 32
	}
	if c.SSEHeartbeat == 0 {
		c.SSEHeartbeat = 15 * time.Second
	}
	if c.CaptureDir == "" && c.DataDir != "" {
		c.CaptureDir = filepath.Join(c.DataDir, "captures")
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.Solve == nil {
		c.Solve = core.Solve
	}
	return c
}

// Server is the solve service: HTTP handlers over a bounded job queue, a
// content-addressed result cache, and Prometheus-text metrics.
type Server struct {
	cfg     Config
	reg     *metrics.Registry
	cache   *lruCache
	jobs    *jobStore
	queue   *jobQueue
	persist *persistence // nil without Config.DataDir

	// budget leases compute to executing jobs (see Config.WorkerBudget);
	// admission turns observed service times into Retry-After hints.
	budget    *parallel.Budget
	admission admissionEstimator

	// events is the flight recorder (see obs.EventRing); streamSem bounds
	// concurrent SSE subscribers (Config.MaxEventStreams).
	events    *obs.EventRing
	streamSem chan struct{}

	// warmDims memoizes the schedule parameter count per (spec hash,
	// schedule-shaping options) so warm-start dimension validation does
	// not rebuild the basis and schedule on every lookup.
	warmDims sync.Map // string → int

	problemsJSON []byte // precomputed GET /v1/problems body

	log *slog.Logger

	solveDuration  metrics.Histogram
	cacheHits      metrics.Counter
	cacheMisses    metrics.Counter
	jobsSubmitted  metrics.Counter
	jobsCompleted  metrics.Counter
	jobsFailed     metrics.Counter
	jobsCancelled  metrics.Counter
	jobsCoalesced  metrics.Counter
	rejectedFull   metrics.Counter
	rejectedDrain  metrics.Counter
	jobsShed       metrics.Counter
	batchRequests  metrics.Counter
	warmDimSkips   metrics.Counter
	solverPanics   metrics.Counter
	jobsRecovered  metrics.Counter
	warmHitsExact  metrics.Counter
	warmHitsFamily metrics.Counter
	warmMisses     metrics.Counter
	inflight       metrics.Gauge
	solvesRunning  metrics.Gauge
}

// New builds a server and starts its executor goroutines. Call Drain to
// stop accepting work and wait for accepted jobs. New panics if
// Config.DataDir is set and the durable stores cannot be opened; use
// Open for error handling.
func New(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic("service: " + err.Error())
	}
	return s
}

// Open builds a server, opening and replaying the durability layer when
// Config.DataDir is set. Call Drain then Close to shut down cleanly.
func Open(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		reg:   metrics.NewRegistry(),
		cache: newLRUCache(cfg.CacheEntries),
		jobs:  newJobStore(cfg.JobRetention),
	}
	s.queue = newJobQueue(cfg.QueueCapacity, cfg.Executors, s.runJob)
	s.budget = parallel.NewBudget(cfg.WorkerBudget)
	s.problemsJSON = buildProblemsListing()
	s.log = cfg.Logger
	s.events = obs.NewEventRing(cfg.EventRingSize)
	s.streamSem = make(chan struct{}, cfg.MaxEventStreams)

	r := s.reg
	s.solveDuration = r.Histogram("rasengan_solve_duration_seconds", "Executor time per job.", nil)
	s.cacheHits = r.Counter("rasengan_cache_hits_total", "Solve requests answered from the result cache.")
	s.cacheMisses = r.Counter("rasengan_cache_misses_total", "Solve requests that required computation.")
	s.jobsSubmitted = r.Counter("rasengan_jobs_submitted_total", "Jobs accepted into the queue.")
	s.jobsCompleted = r.Counter("rasengan_jobs_completed_total", "Jobs finished successfully.")
	s.jobsFailed = r.Counter("rasengan_jobs_failed_total", "Jobs that errored or timed out.")
	s.jobsCancelled = r.Counter("rasengan_jobs_cancelled_total", "Jobs whose solve stopped at a context cancellation or deadline instead of completing.")
	s.solverPanics = r.Counter("rasengan_solver_panics_total", "Solver panics recovered and converted into failed jobs.")
	s.jobsCoalesced = r.Counter("rasengan_jobs_coalesced_total", "Requests joined onto an identical in-flight job.")
	s.jobsRecovered = r.Counter("rasengan_jobs_recovered_total", "Jobs restored from the journal at startup (terminal and re-enqueued).")
	s.warmHitsExact = r.CounterWith("rasengan_warmstart_hits_total", "Warm-start lookups served from the parameter store.", [2]string{"kind", "exact"})
	s.warmHitsFamily = r.CounterWith("rasengan_warmstart_hits_total", "Warm-start lookups served from the parameter store.", [2]string{"kind", "family"})
	s.warmMisses = r.Counter("rasengan_warmstart_misses_total", "Warm-start lookups that found no stored parameters.")
	s.rejectedFull = r.Counter("rasengan_jobs_rejected_queue_full_total", "Submissions rejected with 429 (queue full).")
	s.rejectedDrain = r.Counter("rasengan_jobs_rejected_draining_total", "Submissions rejected with 503 (draining).")
	s.jobsShed = r.Counter("rasengan_jobs_shed_total", "Submissions rejected with 429 at the shed watermark (queue not yet full).")
	s.batchRequests = r.Counter("rasengan_batch_requests_total", "POST /v1/solve/batch requests accepted for processing.")
	s.warmDimSkips = r.Counter("rasengan_warmstart_dim_mismatch_total", "Warm-start vectors skipped because their dimension did not match the request's schedule.")
	s.inflight = r.Gauge("rasengan_jobs_inflight", "Jobs queued or running.")
	s.solvesRunning = r.Gauge("rasengan_solves_running", "Solves currently executing (excludes queued jobs).")
	r.GaugeFunc("rasengan_queue_depth", "Accepted jobs waiting for an executor.", func() float64 {
		return float64(s.queue.Depth())
	})
	r.GaugeFunc("rasengan_queue_capacity", "Queue slot count.", func() float64 {
		return float64(s.queue.Capacity())
	})
	r.GaugeFunc("rasengan_cache_entries", "Result-cache entries resident.", func() float64 {
		return float64(s.cache.Len())
	})
	r.GaugeFunc("rasengan_cache_evictions_total", "Result-cache LRU evictions.", func() float64 {
		_, _, ev := s.cache.Stats()
		return float64(ev)
	})
	r.GaugeFunc("rasengan_cache_capacity", "Result-cache entry capacity (0 when caching is disabled).", func() float64 {
		if cfg.CacheEntries < 0 {
			return 0
		}
		return float64(cfg.CacheEntries)
	})
	r.GaugeFunc("rasengan_job_retention_capacity", "Terminal-job retention ring capacity.", func() float64 {
		return float64(cfg.JobRetention)
	})
	r.GaugeFunc("rasengan_worker_budget_total", "Total compute budget leased across executing solves.", func() float64 {
		return float64(s.budget.Total())
	})
	r.GaugeFunc("rasengan_worker_leases_active", "Solves currently holding a worker lease.", func() float64 {
		return float64(s.budget.Active())
	})
	r.GaugeFunc("rasengan_worker_budget_granted", "Sum of lease grants outstanding (= budget while leases ≤ budget).", func() float64 {
		return float64(s.budget.Granted())
	})
	// Anomaly-capture reasons are pre-registered so the family is visible
	// at zero; the watchdog increments via the same CounterWith call.
	r.CounterWith("rasengan_anomaly_captures_total", "Anomaly snapshots taken by the slow-solve watchdog.", [2]string{"reason", "stall"})
	r.CounterWith("rasengan_anomaly_captures_total", "Anomaly snapshots taken by the slow-solve watchdog.", [2]string{"reason", "slo"})
	r.GaugeFunc("rasengan_event_ring_events", "Events resident in the flight-recorder ring.", func() float64 {
		return float64(s.events.Len())
	})
	r.GaugeFunc("rasengan_event_ring_dropped_total", "Events evicted from the flight-recorder ring.", func() float64 {
		return float64(s.events.Dropped())
	})
	metrics.RegisterRuntime(r)
	r.GaugeFunc("rasengan_warmstart_hit_ratio", "Fraction of warm-start lookups served from the store.", func() float64 {
		hits := s.warmHitsExact.Value() + s.warmHitsFamily.Value()
		total := hits + s.warmMisses.Value()
		if total == 0 {
			return 0
		}
		return hits / total
	})

	if cfg.DataDir != "" {
		persist, entries, err := openPersistence(cfg.DataDir, cfg.WarmStartCapacity)
		if err != nil {
			return nil, err
		}
		s.persist = persist
		r.GaugeFuncWith("rasengan_store_entries", "Entries resident per durable store.", func() float64 {
			return float64(persist.warm.Len())
		}, [2]string{"store", "warmstart"})
		r.GaugeFuncWith("rasengan_store_entries", "Entries resident per durable store.", func() float64 {
			keys, err := persist.blobs.Keys()
			if err != nil {
				return -1
			}
			return float64(len(keys))
		}, [2]string{"store", "blobs"})
		r.GaugeFunc("rasengan_wal_fsyncs", "fsync calls issued by the journal WAL (group commit batches appends).", func() float64 {
			return float64(persist.journal.Syncs())
		})
		if err := s.recover(entries); err != nil {
			persist.journal.Close()
			return nil, err
		}
	}
	return s, nil
}

// Metrics exposes the registry (the binary shares it for build info).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Drain stops intake (new solves get 503) and blocks until every
// accepted job has reached a terminal state or ctx expires.
func (s *Server) Drain(ctx context.Context) error { return s.queue.Drain(ctx) }

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.instrument("solve", s.handleSolve))
	mux.HandleFunc("POST /v1/solve/batch", s.instrument("solve_batch", s.handleSolveBatch))
	mux.HandleFunc("GET /v1/jobs", s.instrument("jobs", s.handleJobs))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("job", s.handleJob))
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.instrument("job_events", s.handleJobEvents))
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.instrument("cancel", s.handleCancel))
	mux.HandleFunc("GET /v1/problems", s.instrument("problems", s.handleProblems))
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealth))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	// The duration child is resolved once per route at wrap time, so the
	// per-request cost is one histogram observation, not a registry lookup.
	dur := s.reg.HistogramWith("rasengan_http_request_duration_seconds",
		"HTTP request latency by route.", nil, [2]string{"route", route})
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		dur.Observe(time.Since(start).Seconds())
		s.reg.CounterWith("rasengan_http_requests_total", "HTTP requests by route and status.",
			[2]string{"route", route}, [2]string{"code", fmt.Sprintf("%d", rec.code)}).Inc()
	}
}

// statusRecorder captures the response status for the request counter. It
// must stay transparent to streaming handlers: Flush forwards to the
// underlying writer when it supports flushing (SSE breaks without this —
// events would sit in the server's buffer until the stream ends), and
// Unwrap lets http.ResponseController reach every other optional
// interface of the original writer.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// --- request/response shapes ---

// solveRequest is the body of POST /v1/solve.
type solveRequest struct {
	// Spec selects the problem (see problems.Spec).
	Spec json.RawMessage `json:"spec"`
	// Config tunes the solver; zero values mean defaults.
	Config solveConfig `json:"config"`
	// WaitMS, when positive, holds the request open up to that many
	// milliseconds for the result, enabling one-round-trip solves.
	WaitMS int `json:"wait_ms,omitempty"`
	// TimeoutMS overrides the job deadline (capped by the server's
	// MaxTimeout).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// solveConfig is the client-facing subset of the solver knobs. It maps
// onto core.Options; everything not exposed here stays at the pipeline
// default.
type solveConfig struct {
	Seed          int64  `json:"seed,omitempty"`
	MaxIter       int    `json:"max_iter,omitempty"`
	Shots         int    `json:"shots,omitempty"`
	Device        string `json:"device,omitempty"`
	SparsestFirst bool   `json:"sparsest_first,omitempty"`
	// WarmStart opts in to seeding the optimizer from the server's
	// warm-start parameter store (exact spec match first, then the
	// (family, scale) bucket). Inert on servers without a data
	// directory. The injected parameters become part of the resolved
	// options — and therefore of the cache key — so warm-started and
	// cold requests never alias.
	WarmStart bool `json:"warm_start,omitempty"`
}

func (s *Server) buildOptions(c solveConfig) (core.Options, error) {
	var opts core.Options
	opts.Exec.Engine = s.cfg.Engine
	opts.Seed = c.Seed
	if c.MaxIter < 0 || c.MaxIter > s.cfg.MaxIter {
		return opts, fmt.Errorf("max_iter %d out of range [0,%d]", c.MaxIter, s.cfg.MaxIter)
	}
	opts.MaxIter = c.MaxIter
	if c.Shots < 0 || c.Shots > 1<<20 {
		return opts, fmt.Errorf("shots %d out of range [0,%d]", c.Shots, 1<<20)
	}
	opts.Exec.Shots = c.Shots
	opts.Schedule.SparsestFirst = c.SparsestFirst
	if c.Device != "" {
		dev, err := device.ByName(c.Device)
		if err != nil {
			return opts, err
		}
		opts.Exec.Device = dev
		if opts.Exec.Shots == 0 {
			opts.Exec.Shots = 1024
		}
	}
	return opts, nil
}

// solveResponse is the envelope of POST /v1/solve and GET /v1/jobs/{id}.
// Result carries the cached-or-computed payload verbatim: for one cache
// key it is byte-identical on every response that includes it.
type solveResponse struct {
	JobID  string          `json:"job_id"`
	Status Status          `json:"status"`
	Cached bool            `json:"cached"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	// Telemetry is the job's convergence trace (winning start, one record
	// per optimizer iteration). Present on computed jobs only — cache hits
	// replay result bytes, not the original run's telemetry.
	Telemetry []core.IterationTelemetry `json:"telemetry,omitempty"`
	// Progress is the latest live-progress record of a queued/running job
	// (see obs.Progress); never present on terminal responses, so cached
	// payload byte-identity is untouched.
	Progress *obs.Progress `json:"progress,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// --- handlers ---

const maxBodyBytes = 1 << 20

// preparedSolve is a parsed, validated, keyed solve request, ready for
// admission. Both the single and batch endpoints produce one per item.
type preparedSolve struct {
	rawSpec   json.RawMessage
	cfg       solveConfig
	timeoutMS int
	spec      *problems.Spec
	specHash  string
	problem   *problems.Problem
	opts      core.Options
	key       string
	deadline  time.Duration
}

// prepareSolve validates a request through to its cache key: parse the
// spec, resolve options, build the problem, inject (dimension-checked)
// warm starts, fingerprint. On error the int is the HTTP status.
func (s *Server) prepareSolve(req solveRequest) (*preparedSolve, int, error) {
	if len(req.Spec) == 0 {
		return nil, http.StatusBadRequest, errors.New("missing \"spec\"")
	}
	spec, err := problems.ParseSpec(req.Spec)
	if err != nil {
		return nil, http.StatusUnprocessableEntity, err
	}
	specHash, err := spec.Hash()
	if err != nil {
		return nil, http.StatusUnprocessableEntity, err
	}
	opts, err := s.buildOptions(req.Config)
	if err != nil {
		return nil, http.StatusUnprocessableEntity, fmt.Errorf("invalid config: %w", err)
	}
	p, err := spec.Build()
	if err != nil {
		return nil, http.StatusUnprocessableEntity, err
	}
	if p.N > s.cfg.MaxVars {
		return nil, http.StatusUnprocessableEntity,
			fmt.Errorf("problem has %d variables; this server accepts at most %d", p.N, s.cfg.MaxVars)
	}
	if req.Config.WarmStart {
		// Inject before the key is computed: the fingerprint must cover
		// the initial times actually used (see lookupWarmStart).
		opts.InitialTimes = s.lookupWarmStart(spec, specHash, p, opts)
	}
	deadline := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		deadline = time.Duration(req.TimeoutMS) * time.Millisecond
		if deadline > s.cfg.MaxTimeout {
			deadline = s.cfg.MaxTimeout
		}
	}
	return &preparedSolve{
		rawSpec:   req.Spec,
		cfg:       req.Config,
		timeoutMS: req.TimeoutMS,
		spec:      spec,
		specHash:  specHash,
		problem:   p,
		opts:      opts,
		key:       specHash + "/" + core.OptionsFingerprint(opts),
		deadline:  deadline,
	}, 0, nil
}

// errShedding marks a request rejected at the shed watermark — the queue
// had slots, but admission control chose to keep them as headroom.
var errShedding = errors.New("service: shedding load")

// shedding reports whether the watermark admission check should reject
// new work right now.
func (s *Server) shedding() bool {
	wm := s.cfg.ShedWatermark
	if wm <= 0 || wm >= 1 {
		return false
	}
	limit := int(wm * float64(s.queue.Capacity()))
	if limit < 1 {
		limit = 1
	}
	return s.queue.Load() >= limit
}

// reserveAndCreate runs the admission sequence up to (but not including)
// the journal write: coalesce onto in-flight work, shed check, slot
// reservation, job creation. When created is true the caller owns a
// reserved queue slot and must journal the acceptance and then Commit
// the job (or cancel the reservation).
func (s *Server) reserveAndCreate(ps *preparedSolve) (j *job, created bool, err error) {
	// Coalescing needs no slot: the duplicate rides the original's.
	if existing, ok := s.jobs.lookupInflight(ps.key); ok {
		s.jobsCoalesced.Inc()
		return existing, false, nil
	}
	if s.shedding() {
		s.jobsShed.Inc()
		s.events.Record(obs.SevWarn, obs.EventShed, "", ps.specHash,
			fmt.Sprintf("watermark: queue at %d of %d slots", s.queue.Load(), s.queue.Capacity()))
		return nil, false, errShedding
	}
	// Reserve before create: a synchronous rejection (429/503) must leave
	// no trace — no job id, no journal records, nothing to cancel.
	if err := s.queue.Reserve(); err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			s.rejectedFull.Inc()
			s.events.Record(obs.SevWarn, obs.EventShed, "", ps.specHash,
				fmt.Sprintf("queue full (%d slots)", s.queue.Capacity()))
		case errors.Is(err, ErrDraining):
			s.rejectedDrain.Inc()
		}
		return nil, false, err
	}
	j, joined := s.jobs.create(context.Background(), ps.key, ps.problem, ps.opts, ps.deadline)
	if joined {
		// An identical request created the job between lookup and create.
		s.queue.CancelReservation()
		s.jobsCoalesced.Inc()
		return j, false, nil
	}
	j.family, j.scale = ps.spec.Family, ps.spec.Scale
	return j, true, nil
}

// commitJob enqueues a job whose acceptance has been journaled. The only
// failure is a drain racing in after Reserve; the journaled accept then
// gets a matching cancel record so replay never resurrects the job.
func (s *Server) commitJob(j *job) error {
	if err := s.queue.Commit(j); err != nil {
		s.rejectedDrain.Inc()
		s.journalState(j, StatusCanceled, "not enqueued")
		j.finish(StatusCanceled, nil, "not enqueued")
		s.jobs.settle(j)
		return err
	}
	s.jobsSubmitted.Inc()
	s.inflight.Add(1)
	s.log.Info("job accepted", "job_id", j.id, "spec_hash", j.key, "problem", j.problem.Name,
		"queue_depth", s.queue.Depth())
	return nil
}

// writeReject answers a rejected submission. Every backpressure response
// carries a Retry-After computed from queue depth and the observed drain
// rate — including the 503 drain path, where it hints at restart time.
func (s *Server) writeReject(w http.ResponseWriter, err error) {
	retry := strconv.Itoa(s.admission.retryAfter(s.queue.Load(), s.cfg.Executors))
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", retry)
		writeError(w, http.StatusTooManyRequests, "queue full (%d slots); retry later", s.queue.Capacity())
	case errors.Is(err, errShedding):
		w.Header().Set("Retry-After", retry)
		writeError(w, http.StatusTooManyRequests,
			"shedding load (queue at %d of %d slots); retry later", s.queue.Load(), s.queue.Capacity())
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", retry)
		writeError(w, http.StatusServiceUnavailable, "server is draining")
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req solveRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return
	}
	ps, code, err := s.prepareSolve(req)
	if err != nil {
		writeError(w, code, "%v", err)
		return
	}

	// Cache first: identical (spec, config) requests never re-simulate.
	if payload, ok := s.cache.Get(ps.key); ok {
		s.cacheHits.Inc()
		j := s.jobs.createDone(payload, true)
		writeJSON(w, http.StatusOK, solveResponse{JobID: j.id, Status: StatusDone, Cached: true, Result: payload})
		return
	}
	s.cacheMisses.Inc()

	j, created, err := s.reserveAndCreate(ps)
	if err != nil {
		s.writeReject(w, err)
		return
	}
	if created {
		// Journal before Commit: once an executor can see the job, its
		// lifecycle records must find the submit record already appended
		// (the journal fold drops records for ids it never saw submitted).
		s.journalAccept(j, ps.rawSpec, ps.cfg, ps.timeoutMS, ps.opts.InitialTimes, ps.problem.Name)
		if err := s.commitJob(j); err != nil {
			s.writeReject(w, err)
			return
		}
	}

	if req.WaitMS > 0 {
		wait := time.Duration(req.WaitMS) * time.Millisecond
		timer := time.NewTimer(wait)
		defer timer.Stop()
		select {
		case <-j.done:
		case <-timer.C:
		case <-r.Context().Done():
		}
	}
	s.respondJob(w, j)
}

// batchRequest is the body of POST /v1/solve/batch: up to Config.MaxBatch
// independent solve items. Items are admitted individually (mixed
// outcomes are normal) but accepted items share one journal group-commit,
// so a K-item batch costs one fsync instead of K.
type batchRequest struct {
	Items []solveRequest `json:"items"`
}

// batchItem is the per-item outcome; Code is the HTTP status the item
// would have received from POST /v1/solve.
type batchItem struct {
	Code        int             `json:"code"`
	JobID       string          `json:"job_id,omitempty"`
	Status      Status          `json:"status,omitempty"`
	Cached      bool            `json:"cached,omitempty"`
	Error       string          `json:"error,omitempty"`
	RetryAfterS int             `json:"retry_after_s,omitempty"`
	Result      json.RawMessage `json:"result,omitempty"`
}

type batchResponse struct {
	Items []batchItem `json:"items"`
}

func (s *Server) handleSolveBatch(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req batchRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return
	}
	if len(req.Items) == 0 {
		writeError(w, http.StatusBadRequest, "batch has no items")
		return
	}
	if len(req.Items) > s.cfg.MaxBatch {
		writeError(w, http.StatusRequestEntityTooLarge,
			"batch has %d items; this server accepts at most %d", len(req.Items), s.cfg.MaxBatch)
		return
	}
	s.batchRequests.Inc()

	items := make([]batchItem, len(req.Items))
	type accepted struct {
		idx int
		ps  *preparedSolve
		j   *job
	}
	var toCommit []accepted
	for i, item := range req.Items {
		ps, code, err := s.prepareSolve(item)
		if err != nil {
			items[i] = batchItem{Code: code, Error: err.Error()}
			continue
		}
		if payload, ok := s.cache.Get(ps.key); ok {
			s.cacheHits.Inc()
			j := s.jobs.createDone(payload, true)
			items[i] = batchItem{Code: http.StatusOK, JobID: j.id, Status: StatusDone, Cached: true, Result: payload}
			continue
		}
		s.cacheMisses.Inc()
		j, created, err := s.reserveAndCreate(ps)
		if err != nil {
			code := http.StatusTooManyRequests
			if errors.Is(err, ErrDraining) {
				code = http.StatusServiceUnavailable
			}
			items[i] = batchItem{Code: code, Error: err.Error(),
				RetryAfterS: s.admission.retryAfter(s.queue.Load(), s.cfg.Executors)}
			continue
		}
		if !created {
			// Coalesced onto an in-flight job (possibly an earlier item of
			// this very batch carrying the same key).
			v := j.snapshot()
			items[i] = batchItem{Code: http.StatusAccepted, JobID: v.ID, Status: v.Status, Cached: v.Cached}
			continue
		}
		items[i] = batchItem{Code: http.StatusAccepted, JobID: j.id, Status: StatusQueued}
		toCommit = append(toCommit, accepted{idx: i, ps: ps, j: j})
	}

	// One WAL group-commit covers every accepted item, then each commits
	// into its reserved slot.
	batch := make([]acceptedJob, len(toCommit))
	for i, a := range toCommit {
		batch[i] = acceptedJob{j: a.j, spec: a.ps.rawSpec, cfg: a.ps.cfg,
			timeoutMS: a.ps.timeoutMS, initialTimes: a.ps.opts.InitialTimes, problem: a.ps.problem.Name}
	}
	s.journalAcceptBatch(batch)
	for _, a := range toCommit {
		if err := s.commitJob(a.j); err != nil {
			items[a.idx] = batchItem{Code: http.StatusServiceUnavailable, Error: err.Error()}
		}
	}
	writeJSON(w, http.StatusOK, batchResponse{Items: items})
}

func (s *Server) respondJob(w http.ResponseWriter, j *job) {
	v := j.snapshot()
	code := http.StatusAccepted
	if v.Status == StatusDone || v.Status == StatusFailed || v.Status == StatusCanceled {
		code = http.StatusOK
	}
	writeJSON(w, code, solveResponse{JobID: v.ID, Status: v.Status, Cached: v.Cached, Error: v.Error, Result: v.Result, Telemetry: v.Telemetry, Progress: v.Progress})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	s.respondJob(w, j)
}

// jobsResponse is the envelope of GET /v1/jobs: paginated summaries
// (no result payloads or telemetry) in job-id order.
type jobsResponse struct {
	Jobs   []jobView `json:"jobs"`
	Total  int       `json:"total"`
	Offset int       `json:"offset"`
	Limit  int       `json:"limit"`
}

const (
	defaultListLimit = 50
	maxListLimit     = 500
)

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var status Status
	if raw := q.Get("state"); raw != "" {
		switch Status(raw) {
		case StatusQueued, StatusRunning, StatusDone, StatusFailed, StatusCanceled:
			status = Status(raw)
		default:
			writeError(w, http.StatusBadRequest,
				"unknown state %q (want queued, running, done, failed, or canceled)", raw)
			return
		}
	}
	limit, err := queryInt(q.Get("limit"), defaultListLimit, 1, maxListLimit)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid limit: %v", err)
		return
	}
	offset, err := queryInt(q.Get("offset"), 0, 0, 1<<30)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid offset: %v", err)
		return
	}
	views, total := s.jobs.list(status, offset, limit)
	writeJSON(w, http.StatusOK, jobsResponse{Jobs: views, Total: total, Offset: offset, Limit: limit})
}

// queryInt parses an optional integer query parameter within [min, max].
func queryInt(raw string, def, min, max int) (int, error) {
	if raw == "" {
		return def, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("%q is not an integer", raw)
	}
	if n < min || n > max {
		return 0, fmt.Errorf("%d out of range [%d,%d]", n, min, max)
	}
	return n, nil
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	j.cancel()
	s.respondJob(w, j)
}

func (s *Server) handleProblems(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(s.problemsJSON)
}

// handleHealth reports liveness plus the intake state a cluster
// gateway's health checker keys on: "draining" means the process is
// alive but rejecting new work (graceful shutdown), so the gateway
// ejects it from the ring before clients see 503s. The response stays
// a plain 200 with "status":"ok" in both states — existing CI smokes
// and load balancers that only look for liveness keep working.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	state := "ok"
	if s.queue.Draining() {
		state = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"state":       state,
		"queued":      s.queue.Depth(),
		"executing":   int(s.solvesRunning.Value()),
		"queue_depth": s.queue.Depth(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.reg.WriteText(w)
}

// runJob executes one accepted job synchronously on its executor
// goroutine. The solve is cooperatively cancellable — core.Solve checks
// j.ctx at every optimizer iteration, executor segment, and parallel
// chunk — so when a deadline or cancel fires, the solve returns and the
// executor is free for the next job within one boundary's worth of work;
// no goroutine is left running an abandoned solve. Every path ends in a
// terminal state: ctx-stopped jobs settle via finishErr, panics become
// failed jobs, successes land in the cache.
func (s *Server) runJob(j *job) {
	enter := time.Now()
	defer func() {
		s.jobs.settle(j)
		s.inflight.Add(-1)
		// Executor occupancy feeds the Retry-After estimator: how long one
		// queue slot takes to turn over, instant cancellations included.
		s.admission.observe(time.Since(enter).Seconds())
	}()
	if err := j.ctx.Err(); err != nil {
		s.finishErr(j, err)
		return
	}
	if !j.setRunning() {
		s.finishErr(j, context.Canceled)
		return
	}
	// Lease compute for the duration of the solve. The solver re-reads the
	// lease at every optimizer-iteration boundary, so a job that starts
	// alone with the whole budget narrows when neighbors arrive and widens
	// back as they finish — without ever changing its results.
	lease := s.budget.Acquire()
	defer lease.Release()
	j.opts.Workers = lease
	// Every executed solve records stage spans and convergence telemetry.
	// Neither can change the result (telemetry observes, never steers) or
	// the cached payload (convergence lives on the job, not in the result
	// bytes), so the cache key ignores it by construction.
	rec := obs.NewRecorder()
	j.opts.Telemetry.Spans = rec
	j.opts.Telemetry.Convergence = true
	// Live introspection: the solver publishes per-iteration progress into
	// the job's cell and flight-recorder events into the shared ring, both
	// correlated with this job. Neither can steer the solve.
	j.opts.Telemetry.Progress = j.progress
	specHash := j.key
	if sh, _, ok := splitKey(j.key); ok {
		specHash = sh
	}
	j.opts.Telemetry.Events = &obs.EventScope{Ring: s.events, JobID: j.id, SpecHash: specHash}
	s.journalState(j, StatusRunning, "")
	s.log.Info("job running", "job_id", j.id, "spec_hash", j.key, "problem", j.problem.Name)
	s.solvesRunning.Inc()
	start := time.Now()
	stopWatch := s.watchJob(j, rec, specHash)
	res, err := s.runSolve(j)
	stopWatch()
	s.solvesRunning.Dec()
	if err != nil {
		if j.ctx.Err() != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			// Not a latency sample: observing abandoned solves would fold
			// the deadline value itself into the duration histogram.
			s.finishErr(j, err)
			return
		}
		s.solveDuration.Observe(time.Since(start).Seconds())
		s.observeStages(rec)
		if errors.Is(err, core.ErrSolvePanic) {
			s.solverPanics.Inc()
		}
		s.journalState(j, StatusFailed, err.Error())
		j.finish(StatusFailed, nil, err.Error())
		s.jobsFailed.Inc()
		s.log.Warn("job failed", "job_id", j.id, "spec_hash", j.key,
			"duration_ms", time.Since(start).Milliseconds(), "error", err.Error())
		return
	}
	s.solveDuration.Observe(time.Since(start).Seconds())
	s.observeStages(rec)
	payload, err := marshalResult(j.problem, res)
	if err != nil {
		s.journalState(j, StatusFailed, "marshal result: "+err.Error())
		j.finish(StatusFailed, nil, "marshal result: "+err.Error())
		s.jobsFailed.Inc()
		return
	}
	j.setConvergence(res.Convergence)
	s.recordWarm(j, res.Times)
	s.journalResult(j, payload)
	s.journalState(j, StatusDone, "")
	s.cache.Put(j.key, payload)
	j.finish(StatusDone, payload, "")
	s.jobsCompleted.Inc()
	s.log.Info("job done", "job_id", j.id, "spec_hash", j.key,
		"duration_ms", time.Since(start).Milliseconds(), "iterations", res.Iterations, "evals", res.Evals)
}

// observeStages folds one job's span totals into the per-stage duration
// histograms scraped at /metrics.
func (s *Server) observeStages(rec *obs.Recorder) {
	for stage, d := range rec.StageTotals() {
		s.reg.HistogramWith("rasengan_stage_duration_seconds",
			"Measured wall time per solve pipeline stage.", nil,
			[2]string{"stage", stage}).Observe(d.Seconds())
	}
}

// runSolve invokes the configured solver with a final panic net. The
// default solver (core.Solve) already recovers its own panics into
// ErrSolvePanic; this layer catches panics from substituted SolveFuncs
// and anything on the executor goroutine outside the solver proper, so a
// poisoned job can never kill an executor.
func (s *Server) runSolve(j *job) (res *core.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, core.NewSolvePanicError(r)
		}
	}()
	return s.cfg.Solve(j.ctx, j.problem, j.opts)
}

// finishErr settles a job whose solve stopped at a context boundary. It
// is the single increment point for rasengan_jobs_cancelled_total, which
// counts every context-stopped job regardless of whether the trigger was
// a client cancel or a deadline (deadlines additionally count as failed).
func (s *Server) finishErr(j *job, err error) {
	s.jobsCancelled.Inc()
	if errors.Is(err, context.DeadlineExceeded) {
		s.journalState(j, StatusFailed, "deadline exceeded")
		j.finish(StatusFailed, nil, "deadline exceeded")
		s.jobsFailed.Inc()
		s.log.Warn("job deadline exceeded", "job_id", j.id, "spec_hash", j.key)
		return
	}
	s.journalState(j, StatusCanceled, "canceled")
	j.finish(StatusCanceled, nil, "canceled")
	s.log.Info("job cancelled", "job_id", j.id, "spec_hash", j.key)
}

// buildProblemsListing precomputes the GET /v1/problems body: every
// generator family × scale with its instance shape (case 0).
func buildProblemsListing() []byte {
	type cell struct {
		Label          string `json:"label"`
		Family         string `json:"family"`
		Scale          int    `json:"scale"`
		NumVars        int    `json:"num_vars"`
		NumConstraints int    `json:"num_constraints"`
		Sense          string `json:"sense"`
	}
	var cells []cell
	for _, b := range problems.Suite() {
		p := b.Generate(0)
		cells = append(cells, cell{
			Label:          b.Label(),
			Family:         b.Family,
			Scale:          b.Scale,
			NumVars:        p.N,
			NumConstraints: p.NumConstraints(),
			Sense:          p.Sense.String(),
		})
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(map[string]any{"families": problems.Families, "scales": []int{1, 2, 3, 4}, "problems": cells})
	return buf.Bytes()
}
