package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rasengan/internal/core"
	"rasengan/internal/parallel"
	"rasengan/internal/problems"
)

// postRaw posts a body and returns the full response (headers included),
// for tests that assert on Retry-After.
func postRaw(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestOversubscribedBudgetIdenticalPayloads is the tentpole load test:
// 8 concurrent jobs on a 2-worker budget at GOMAXPROCS(2) — 4× logical
// oversubscription. Every solve records the lease width it actually ran
// under and the scheduler's invariants at full saturation, and every
// payload must match the byte-exact solo run of the same request.
func TestOversubscribedBudgetIdenticalPayloads(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))

	const jobs = 8
	const budget = 2

	var (
		srv     *Server
		entered int32
		barrier = make(chan struct{})
		mu      sync.Mutex
		widths  []int
		actives []int
		granted []int
	)
	probe := func(ctx context.Context, p *problems.Problem, opts core.Options) (*core.Result, error) {
		// Hold every job at the barrier until all 8 are executing. The
		// last arriver samples the scheduler at full saturation — every
		// lease is held at that instant, none released yet.
		if atomic.AddInt32(&entered, 1) == jobs {
			mu.Lock()
			actives = append(actives, srv.budget.Active())
			granted = append(granted, srv.budget.Granted())
			mu.Unlock()
			close(barrier)
		}
		select {
		case <-barrier:
		case <-time.After(30 * time.Second):
			return nil, fmt.Errorf("load test barrier timed out")
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		mu.Lock()
		widths = append(widths, parallel.LimiterWidth(opts.Workers))
		mu.Unlock()
		return core.Solve(ctx, p, opts)
	}
	cfg := Config{
		Executors:    jobs, // all 8 run at once; the budget is what divides compute
		WorkerBudget: budget,
		Solve:        probe,
	}
	srv = New(cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	reqs := make([]string, 0, jobs)
	for c := 0; c < 4; c++ {
		for seed := 1; seed <= 2; seed++ {
			reqs = append(reqs, fmt.Sprintf(
				`{"spec":{"family":"FLP","scale":1,"case":%d},"config":{"seed":%d,"max_iter":6,"shots":64},"wait_ms":120000}`, c, seed))
		}
	}

	payloads := make([][]byte, jobs)
	var wg sync.WaitGroup
	for i, r := range reqs {
		wg.Add(1)
		go func(i int, r string) {
			defer wg.Done()
			code, sr, _ := postSolve(t, ts, r)
			if code != http.StatusOK || sr.Status != StatusDone {
				t.Errorf("job %d: code %d status %s error %q", i, code, sr.Status, sr.Error)
				return
			}
			payloads[i] = sr.Result
		}(i, r)
	}
	wg.Wait()

	// Scheduler invariants at 4× oversubscription: every lease holds the
	// floor of 1, no lease exceeds the budget, and at full saturation the
	// grant sum equals the active count (each job schedules at most 1
	// worker's worth of fan-out, so total live pool demand stays bounded
	// by max(budget, jobs-at-floor), never executors × pool width).
	mu.Lock()
	defer mu.Unlock()
	if len(widths) != jobs {
		t.Fatalf("probe saw %d solves, want %d", len(widths), jobs)
	}
	for i, w := range widths {
		if w < 1 || w > budget {
			t.Errorf("solve %d ran with lease width %d, want within [1,%d]", i, w, budget)
		}
	}
	if len(actives) != 1 || actives[0] != jobs {
		t.Errorf("saturation sample: %v active leases, want [%d]", actives, jobs)
	}
	if len(granted) != 1 || granted[0] != jobs { // active > budget ⇒ every lease at floor 1
		t.Errorf("saturation sample: grant sum %v, want [%d] (floor of 1 per lease)", granted, jobs)
	}

	// Byte-identity: the same 8 requests solo, on a fresh server with the
	// whole default budget, produce the identical payloads.
	solo, tsSolo := newTestServer(t, Config{})
	_ = solo
	for i, r := range reqs {
		code, sr, _ := postSolve(t, tsSolo, r)
		if code != http.StatusOK || sr.Status != StatusDone {
			t.Fatalf("solo job %d: code %d status %s", i, code, sr.Status)
		}
		if !bytes.Equal(sr.Result, payloads[i]) {
			t.Errorf("job %d payload under 4x oversubscription differs from solo run:\n%s\n%s",
				i, payloads[i], sr.Result)
		}
	}
}

func postBatch(t *testing.T, ts *httptest.Server, body string) (int, batchResponse) {
	t.Helper()
	resp := postRaw(t, ts.URL+"/v1/solve/batch", body)
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var br batchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &br); err != nil {
			t.Fatalf("bad batch response %s: %v", raw, err)
		}
	}
	return resp.StatusCode, br
}

// TestBatchMixedOutcomes drives one batch through every per-item path:
// cache hit, coalesce onto an in-flight job, and queue-full rejection —
// mixed outcomes in a single request, statuses reported per item.
func TestBatchMixedOutcomes(t *testing.T) {
	var first int32
	block := make(chan struct{})
	gate := func(ctx context.Context, p *problems.Problem, opts core.Options) (*core.Result, error) {
		// First solve (the cache primer) runs through; later solves block
		// so the executor and queue slot stay occupied.
		if atomic.AddInt32(&first, 1) > 1 {
			select {
			case <-block:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return stubSolve(nil)(ctx, p, opts)
	}
	_, ts := newTestServer(t, Config{Executors: 1, QueueCapacity: 1, Solve: gate})
	defer close(block)

	code, sr, _ := postSolve(t, ts, `{"spec":{"family":"FLP","scale":1,"case":0},"wait_ms":30000}`)
	if code != http.StatusOK || sr.Status != StatusDone {
		t.Fatalf("prime solve: code %d status %s", code, sr.Status)
	}
	// Occupy the executor (blocked) and the single queue slot.
	code, running, _ := postSolve(t, ts, `{"spec":{"family":"FLP","scale":1,"case":1}}`)
	if code != http.StatusAccepted {
		t.Fatalf("running job: code %d", code)
	}
	if code, _, _ = postSolve(t, ts, `{"spec":{"family":"FLP","scale":1,"case":2}}`); code != http.StatusAccepted {
		t.Fatalf("queued job: code %d", code)
	}

	batchBody := `{"items":[` +
		`{"spec":{"family":"FLP","scale":1,"case":0}},` + // cache hit
		`{"spec":{"family":"FLP","scale":1,"case":1}},` + // coalesces with running job
		`{"spec":{"family":"FLP","scale":1,"case":3}},` + // queue full → 429
		`{"spec":{"bogus":1}}` + // invalid spec → 4xx
		`]}`
	code, br := postBatch(t, ts, batchBody)
	if code != http.StatusOK {
		t.Fatalf("batch: code %d", code)
	}
	if len(br.Items) != 4 {
		t.Fatalf("batch returned %d items, want 4", len(br.Items))
	}
	if it := br.Items[0]; it.Code != http.StatusOK || !it.Cached || len(it.Result) == 0 {
		t.Errorf("item 0: code %d cached %v, want 200 cache hit with result", it.Code, it.Cached)
	}
	if it := br.Items[1]; it.Code != http.StatusAccepted || it.JobID != running.JobID {
		t.Errorf("item 1: code %d job %q, want 202 coalesced onto %q", it.Code, it.JobID, running.JobID)
	}
	if it := br.Items[2]; it.Code != http.StatusTooManyRequests || it.RetryAfterS < 1 {
		t.Errorf("item 2: code %d retry_after_s %d, want 429 with a hint", it.Code, it.RetryAfterS)
	}
	if it := br.Items[3]; it.Code < 400 || it.Code == http.StatusTooManyRequests || it.Error == "" {
		t.Errorf("item 3: code %d error %q, want a 4xx parse rejection", it.Code, it.Error)
	}

	// Oversized batches are rejected whole.
	items := make([]string, 0, 17)
	for i := 0; i < 17; i++ {
		items = append(items, fmt.Sprintf(`{"spec":{"family":"FLP","scale":1,"case":%d}}`, i%4))
	}
	if code, _ := postBatch(t, ts, `{"items":[`+strings.Join(items, ",")+`]}`); code != http.StatusRequestEntityTooLarge {
		t.Errorf("17-item batch: code %d, want 413", code)
	}
}

// TestBatchSharesOneFsync: a K-item batch of fresh jobs adds far fewer
// than K fsyncs — the accept records ride one group commit.
func TestBatchSharesOneFsync(t *testing.T) {
	dir := t.TempDir()
	block := make(chan struct{})
	s, ts := openDurable(t, Config{DataDir: dir, Executors: 1, QueueCapacity: 16, Solve: stubSolve(block)})

	before := s.persist.journal.Syncs()
	var items []string
	for i := 0; i < 4; i++ {
		items = append(items, fmt.Sprintf(`{"spec":{"family":"KPP","scale":1,"case":%d}}`, i))
	}
	code, br := postBatch(t, ts, `{"items":[`+strings.Join(items, ",")+`]}`)
	if code != http.StatusOK {
		t.Fatalf("batch: code %d", code)
	}
	accepted := 0
	for _, it := range br.Items {
		if it.Code == http.StatusAccepted {
			accepted++
		}
	}
	if accepted != 4 {
		t.Fatalf("accepted %d of 4 batch items", accepted)
	}
	// One group commit for 4 submit records. The executor may have started
	// the first job (one state record) before we sample, so allow ≤ 2.
	if syncs := s.persist.journal.Syncs() - before; syncs > 2 {
		t.Errorf("4-item batch cost %d fsyncs, want the accept records on one group commit", syncs)
	}
	close(block)
	shutdown(t, s, ts)
}

// TestRetryAfterComputedOnRejections: both backpressure responses carry a
// Retry-After derived from queue state — the 429 a whole-second integer
// ≥ 1, and (the regression half) the draining 503 carries one at all.
func TestRetryAfterComputedOnRejections(t *testing.T) {
	block := make(chan struct{})
	s, ts := newTestServer(t, Config{Executors: 1, QueueCapacity: 1, Solve: stubSolve(block)})

	if code, _, _ := postSolve(t, ts, `{"spec":{"family":"FLP","scale":1,"case":0}}`); code != http.StatusAccepted {
		t.Fatalf("first submit: code %d", code)
	}
	if code, _, _ := postSolve(t, ts, `{"spec":{"family":"FLP","scale":1,"case":1}}`); code != http.StatusAccepted {
		t.Fatalf("second submit: code %d", code)
	}
	resp := postRaw(t, ts.URL+"/v1/solve", `{"spec":{"family":"FLP","scale":1,"case":2}}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: code %d, want 429", resp.StatusCode)
	}
	retry := resp.Header.Get("Retry-After")
	if n, err := strconv.Atoi(retry); err != nil || n < 1 || n > 60 {
		t.Errorf("429 Retry-After = %q, want an integer in [1,60]", retry)
	}

	// Begin draining (executor still blocked keeps Drain pending), then
	// assert the 503 also carries the computed hint.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp := postRaw(t, ts.URL+"/v1/solve", `{"spec":{"family":"FLP","scale":1,"case":3}}`)
		if resp.StatusCode == http.StatusServiceUnavailable {
			retry := resp.Header.Get("Retry-After")
			if n, err := strconv.Atoi(retry); err != nil || n < 1 {
				t.Errorf("503 Retry-After = %q, want an integer >= 1", retry)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("draining server never answered 503")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(block)
	<-drained
}

// TestShedWatermark: with a watermark configured, submissions are shed
// with 429 while the queue still has free slots, and the shed counter —
// not the queue-full counter — records them.
func TestShedWatermark(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	s, ts := newTestServer(t, Config{Executors: 1, QueueCapacity: 10, ShedWatermark: 0.3, Solve: stubSolve(block)})

	// Wait until the first job is off the queue and running, so queue load
	// is deterministic for the rest of the sequence.
	code, sr, _ := postSolve(t, ts, `{"spec":{"family":"FLP","scale":1,"case":0}}`)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: code %d", code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.queue.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("job %s never left the queue", sr.JobID)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// 3 queued jobs reach the watermark: load 3 = int(0.3 × 10).
	for i := 1; i < 4; i++ {
		if code, _, _ := postSolve(t, ts, fmt.Sprintf(`{"spec":{"family":"FLP","scale":1,"case":%d}}`, i)); code != http.StatusAccepted {
			t.Fatalf("submit %d: code %d", i, code)
		}
	}
	resp := postRaw(t, ts.URL+"/v1/solve", `{"spec":{"family":"FLP","scale":1,"case":4}}`)
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submission past the watermark: code %d, want 429 (%s)", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "shedding load") {
		t.Errorf("shed response body: %s", raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed 429 missing Retry-After")
	}
	if got := s.jobsShed.Value(); got != 1 {
		t.Errorf("rasengan_jobs_shed_total = %v, want 1", got)
	}
	if got := s.rejectedFull.Value(); got != 0 {
		t.Errorf("queue-full counter incremented by a shed rejection: %v", got)
	}
}

// TestRejectionLeavesNoJournalTrace is the regression for the
// accept-then-cancel churn: a synchronously rejected submission (429)
// must write nothing to the journal, so a restart over the same data
// directory surfaces no phantom canceled job.
func TestRejectionLeavesNoJournalTrace(t *testing.T) {
	dir := t.TempDir()
	block := make(chan struct{})
	a, tsA := openDurable(t, Config{DataDir: dir, Executors: 1, QueueCapacity: 1, Solve: stubSolve(block)})

	if code, _, _ := postSolve(t, tsA, `{"spec":{"family":"FLP","scale":1,"case":0}}`); code != http.StatusAccepted {
		t.Fatal("first submit not accepted")
	}
	if code, _, _ := postSolve(t, tsA, `{"spec":{"family":"FLP","scale":1,"case":1}}`); code != http.StatusAccepted {
		t.Fatal("second submit not accepted")
	}
	if code, _, _ := postSolve(t, tsA, `{"spec":{"family":"FLP","scale":1,"case":2}}`); code != http.StatusTooManyRequests {
		t.Fatal("overflow submit not rejected")
	}
	close(block)
	shutdown(t, a, tsA)

	b, tsB := openDurable(t, Config{DataDir: dir})
	defer shutdown(t, b, tsB)
	var listing jobsResponse
	if err := json.Unmarshal([]byte(getBody(t, tsB.URL+"/v1/jobs")), &listing); err != nil {
		t.Fatal(err)
	}
	if listing.Total != 2 {
		t.Errorf("restart lists %d jobs, want exactly the 2 accepted ones", listing.Total)
	}
	for _, v := range listing.Jobs {
		if v.Status == StatusCanceled {
			t.Errorf("phantom canceled job %s journaled by a rejected submission", v.ID)
		}
	}
}

// TestListingStableAcrossRestart: GET /v1/jobs pages identically before
// and after a restart over the same data directory — ordering is the
// submit sequence, not map iteration or string-sorted ids.
func TestListingStableAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	a, tsA := openDurable(t, Config{DataDir: dir, Solve: stubSolve(nil)})
	for i := 0; i < 5; i++ {
		code, sr, _ := postSolve(t, tsA, fmt.Sprintf(
			`{"spec":{"family":"FLP","scale":1,"case":%d},"wait_ms":30000}`, i))
		if code != http.StatusOK || sr.Status != StatusDone {
			t.Fatalf("job %d: code %d status %s", i, code, sr.Status)
		}
	}
	pageURL := "/v1/jobs?state=done&limit=3&offset=1"
	before := getBody(t, tsA.URL+pageURL)
	shutdown(t, a, tsA)

	b, tsB := openDurable(t, Config{DataDir: dir})
	defer shutdown(t, b, tsB)
	after := getBody(t, tsB.URL+pageURL)
	if before != after {
		t.Errorf("page contents changed across restart:\nbefore: %s\nafter:  %s", before, after)
	}
	var page jobsResponse
	if err := json.Unmarshal([]byte(after), &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Jobs) != 3 || page.Total != 5 {
		t.Fatalf("page shape: %d jobs, total %d, want 3 of 5", len(page.Jobs), page.Total)
	}
	for i := 1; i < len(page.Jobs); i++ {
		if page.Jobs[i-1].ID >= page.Jobs[i].ID {
			t.Errorf("listing out of submit order: %s before %s", page.Jobs[i-1].ID, page.Jobs[i].ID)
		}
	}
}

// TestWarmStartDimensionMismatchSkipped: a stored warm-start vector whose
// length does not match the request's schedule is never injected — the
// lookup counts a mismatch and falls through to a miss, so the cache key
// stays identical to the cold request's.
func TestWarmStartDimensionMismatchSkipped(t *testing.T) {
	dir := t.TempDir()
	s, ts := openDurable(t, Config{DataDir: dir, Solve: stubSolve(nil)})
	defer shutdown(t, s, ts)

	spec, err := problems.ParseSpec([]byte(`{"family":"FLP","scale":1,"case":0}`))
	if err != nil {
		t.Fatal(err)
	}
	specHash, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	p, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	opts, err := s.buildOptions(solveConfig{Seed: 5, MaxIter: 10})
	if err != nil {
		t.Fatal(err)
	}
	dim, err := core.ScheduleParamCount(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Poison both warm-start sources with a wrong-length vector (as a
	// family bucket legitimately can hold, recorded from a sibling
	// instance with a different schedule width).
	bad := make([]float64, dim+3)
	for i := range bad {
		bad[i] = 0.5
	}
	if err := s.persist.warm.Put("spec:"+specHash, bad); err != nil {
		t.Fatal(err)
	}
	if err := s.persist.warm.Put(warmKeyFamily("FLP", 1), bad); err != nil {
		t.Fatal(err)
	}

	warm := `{"spec":{"family":"FLP","scale":1,"case":0},"config":{"seed":5,"max_iter":10,"warm_start":true},"wait_ms":30000}`
	code, sr, _ := postSolve(t, ts, warm)
	if code != http.StatusOK || sr.Status != StatusDone {
		t.Fatalf("warm solve: code %d status %s error %q", code, sr.Status, sr.Error)
	}
	if got := s.warmDimSkips.Value(); got != 2 { // exact key + family bucket both skipped
		t.Errorf("rasengan_warmstart_dim_mismatch_total = %v, want 2", got)
	}
	if got := s.warmHitsExact.Value() + s.warmHitsFamily.Value(); got != 0 {
		t.Errorf("mismatched vectors counted as warm hits: %v", got)
	}

	// No injection happened, so the cold spelling of the request is the
	// same cache key: it must hit.
	cold := `{"spec":{"family":"FLP","scale":1,"case":0},"config":{"seed":5,"max_iter":10},"wait_ms":30000}`
	code, sr2, _ := postSolve(t, ts, cold)
	if code != http.StatusOK || !sr2.Cached {
		t.Errorf("cold request after skipped warm start: code %d cached %v, want cache hit (key must not fork)", code, sr2.Cached)
	}
	if !bytes.Equal(sr.Result, sr2.Result) {
		t.Error("cold payload differs from warm-skipped payload")
	}
}
