// Package service is the long-running solve service of the repository: a
// bounded job queue feeding the Rasengan pipeline, a content-addressed
// result cache, and an HTTP/JSON API (see Server) that cmd/rasengan-serve
// exposes. Requests are keyed by the canonical problem-spec hash plus the
// canonical solver-config fingerprint, and results are deterministic
// byte-for-byte — a cache hit returns exactly the bytes a fresh solve
// would produce.
//
// # Canonicalization invariant
//
// Two requests share a cache key if and only if they are canonically
// identical. Spelling never matters: JSON object-key order, whitespace,
// and config defaults written out versus omitted all normalize away
// (specs via problems.Spec.Canonical, which re-serializes inline
// instances through FromJSON→ToJSON; configs via
// core.CanonicalOptionsJSON, which applies defaults before
// fingerprinting). Provenance, however, does matter: a generator
// reference {family,scale,case} and the inline serialization of the very
// instance it generates are distinct keys by design — canonicalization
// does not expand generators. internal/verify exercises both directions
// of this invariant (see canonical_test.go and the verify package's
// spec_canonical_hash checks), and the cache-replay contract — a hit
// returns exactly the bytes a fresh solve would produce — is what the
// verify package's determinism_repeat metamorphic check enforces.
package service

import (
	"container/list"
	"sync"
)

// lruCache is a fixed-capacity, content-addressed LRU over marshaled
// result payloads. Keys are "<spec-hash>/<config-fingerprint>" strings;
// values are immutable byte slices served verbatim to clients (callers
// must not mutate them after Put).
type lruCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used
	entries  map[string]*list.Element

	hits, misses, evictions uint64
}

type lruEntry struct {
	key   string
	value []byte
}

// newLRUCache returns a cache holding at most capacity entries;
// capacity < 1 disables caching (every lookup misses, Put is a no-op).
func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		capacity: capacity,
		order:    list.New(),
		entries:  map[string]*list.Element{},
	}
}

// Get returns the cached payload and whether it was present, promoting
// the entry to most-recently-used on a hit.
func (c *lruCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).value, true
}

// Put inserts or refreshes an entry, evicting the least recently used
// entry when over capacity.
func (c *lruCache) Put(key string, value []byte) {
	if c.capacity < 1 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruEntry).value = value
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&lruEntry{key: key, value: value})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruEntry).key)
		c.evictions++
	}
}

// Len returns the number of resident entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns cumulative hit/miss/eviction counts.
func (c *lruCache) Stats() (hits, misses, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}
