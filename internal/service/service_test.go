package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rasengan/internal/core"
	"rasengan/internal/problems"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return s, ts
}

func postSolve(t *testing.T, ts *httptest.Server, body string) (int, solveResponse, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var sr solveResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatalf("bad response %s: %v", raw, err)
	}
	return resp.StatusCode, sr, raw
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return string(raw)
}

// TestEndToEndDeterminismAndCaching is the acceptance test of the
// subsystem: two identical solve requests return byte-identical result
// JSON, with the second served from the cache and counted in /metrics.
func TestEndToEndDeterminismAndCaching(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := `{"spec":{"family":"FLP","scale":1,"case":0},"config":{"seed":1,"max_iter":25},"wait_ms":60000}`

	code1, sr1, _ := postSolve(t, ts, req)
	if code1 != http.StatusOK || sr1.Status != StatusDone {
		t.Fatalf("first solve: code %d, status %s, error %q", code1, sr1.Status, sr1.Error)
	}
	if sr1.Cached {
		t.Fatal("first solve reported cached")
	}
	code2, sr2, _ := postSolve(t, ts, req)
	if code2 != http.StatusOK || sr2.Status != StatusDone {
		t.Fatalf("second solve: code %d, status %s", code2, sr2.Status)
	}
	if !sr2.Cached {
		t.Fatal("second identical solve not served from cache")
	}
	if !bytes.Equal(sr1.Result, sr2.Result) {
		t.Fatalf("results differ:\n%s\n%s", sr1.Result, sr2.Result)
	}

	// A semantically identical request in a different wire spelling must
	// hit the same cache entry.
	code3, sr3, _ := postSolve(t, ts,
		`{"spec":{"case":0,"scale":1,"family":"FLP"},"config":{"max_iter":25,"seed":1},"wait_ms":60000}`)
	if code3 != http.StatusOK || !sr3.Cached {
		t.Errorf("reordered request missed the cache (code %d, cached %v)", code3, sr3.Cached)
	}
	if !bytes.Equal(sr1.Result, sr3.Result) {
		t.Error("reordered request returned different bytes")
	}

	// A different seed must NOT hit the cache.
	_, sr4, _ := postSolve(t, ts, `{"spec":{"family":"FLP","scale":1,"case":0},"config":{"seed":2,"max_iter":25},"wait_ms":60000}`)
	if sr4.Cached {
		t.Error("different seed incorrectly served from cache")
	}

	metricsText := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(metricsText, "rasengan_cache_hits_total 2") {
		t.Errorf("metrics do not show 2 cache hits:\n%s", grepLines(metricsText, "cache"))
	}
	if !strings.Contains(metricsText, "rasengan_jobs_completed_total 2") {
		t.Errorf("metrics do not show 2 completed jobs:\n%s", grepLines(metricsText, "jobs"))
	}
}

func grepLines(text, substr string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestConcurrentMixedFamilies fires concurrent solves across all five
// families (some duplicated to exercise coalescing/caching) and then
// drains, asserting no accepted job is lost and duplicates are
// byte-identical.
func TestConcurrentMixedFamilies(t *testing.T) {
	s, ts := newTestServer(t, Config{Executors: 4, QueueCapacity: 64})
	reqs := make([]string, 0, 10)
	for _, fam := range problems.Families {
		r := fmt.Sprintf(`{"spec":{"family":%q,"scale":1,"case":0},"config":{"seed":3,"max_iter":12},"wait_ms":120000}`, fam)
		reqs = append(reqs, r, r) // duplicate each
	}
	results := make([][]byte, len(reqs))
	codes := make([]int, len(reqs))
	var wg sync.WaitGroup
	for i, r := range reqs {
		wg.Add(1)
		go func(i int, r string) {
			defer wg.Done()
			code, sr, _ := postSolve(t, ts, r)
			codes[i] = code
			if sr.Status == StatusDone {
				results[i] = sr.Result
			}
		}(i, r)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d: code %d", i, code)
		}
		if len(results[i]) == 0 {
			t.Fatalf("request %d: no result", i)
		}
	}
	for i := 0; i < len(reqs); i += 2 {
		if !bytes.Equal(results[i], results[i+1]) {
			t.Errorf("duplicate requests %d/%d differ:\n%s\n%s", i, i+1, results[i], results[i+1])
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("graceful drain lost jobs: %v", err)
	}
}

// stubSolve returns a canned result quickly, optionally blocking until
// released, so queue behavior can be tested without real solves.
func stubSolve(block <-chan struct{}) SolveFunc {
	return func(ctx context.Context, p *problems.Problem, opts core.Options) (*core.Result, error) {
		if block != nil {
			select {
			case <-block:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return &core.Result{
			BestSolution: p.Init,
			BestValue:    p.Objective(p.Init),
			Expectation:  p.Objective(p.Init),
		}, nil
	}
}

func TestQueueFullReturns429(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	_, ts := newTestServer(t, Config{Executors: 1, QueueCapacity: 1, Solve: stubSolve(block)})

	specs := []string{
		`{"spec":{"family":"FLP","scale":1,"case":0}}`,
		`{"spec":{"family":"FLP","scale":1,"case":1}}`,
		`{"spec":{"family":"FLP","scale":1,"case":2}}`,
		`{"spec":{"family":"FLP","scale":1,"case":3}}`,
	}
	saw429 := false
	for _, body := range specs {
		code, _, raw := postSolve(t, ts, body)
		switch code {
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			saw429 = true
			if !strings.Contains(string(raw), "queue full") {
				t.Errorf("429 body does not mention queue full: %s", raw)
			}
		default:
			t.Fatalf("unexpected code %d: %s", code, raw)
		}
	}
	if !saw429 {
		t.Error("submitting 4 jobs to a 1-slot queue with 1 blocked executor never returned 429")
	}
	metricsText := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(metricsText, "rasengan_jobs_rejected_queue_full_total") {
		t.Error("metrics missing queue-full rejection counter")
	}
}

func TestJobPollingLifecycle(t *testing.T) {
	block := make(chan struct{})
	_, ts := newTestServer(t, Config{Solve: stubSolve(block)})

	code, sr, _ := postSolve(t, ts, `{"spec":{"family":"KPP","scale":1,"case":0}}`)
	if code != http.StatusAccepted || sr.Status != StatusQueued && sr.Status != StatusRunning {
		t.Fatalf("async submit: code %d status %s", code, sr.Status)
	}
	close(block)
	deadline := time.Now().Add(10 * time.Second)
	for {
		var got solveResponse
		raw := getBody(t, ts.URL+"/v1/jobs/"+sr.JobID)
		if err := json.Unmarshal([]byte(raw), &got); err != nil {
			t.Fatalf("poll: %s: %v", raw, err)
		}
		if got.Status == StatusDone {
			if len(got.Result) == 0 {
				t.Fatal("done job has no result")
			}
			break
		}
		if got.Status == StatusFailed || got.Status == StatusCanceled {
			t.Fatalf("job ended %s: %s", got.Status, got.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", got.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Unknown job → 404.
	resp, err := http.Get(ts.URL + "/v1/jobs/job-99999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: code %d, want 404", resp.StatusCode)
	}
}

func TestJobDeadlineExceeded(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	_, ts := newTestServer(t, Config{Solve: stubSolve(block), DefaultTimeout: 50 * time.Millisecond})
	code, sr, _ := postSolve(t, ts, `{"spec":{"family":"SCP","scale":1,"case":0},"wait_ms":5000}`)
	if code != http.StatusOK {
		t.Fatalf("code %d", code)
	}
	if sr.Status != StatusFailed || !strings.Contains(sr.Error, "deadline") {
		t.Fatalf("status %s error %q, want failed/deadline", sr.Status, sr.Error)
	}
}

func TestJobCancel(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	_, ts := newTestServer(t, Config{Solve: stubSolve(block)})
	_, sr, _ := postSolve(t, ts, `{"spec":{"family":"GCP","scale":1,"case":0}}`)
	resp, err := http.Post(ts.URL+"/v1/jobs/"+sr.JobID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var got solveResponse
		if err := json.Unmarshal([]byte(getBody(t, ts.URL+"/v1/jobs/"+sr.JobID)), &got); err != nil {
			t.Fatal(err)
		}
		if got.Status == StatusCanceled {
			break
		}
		if got.Status == StatusDone || got.Status == StatusFailed {
			t.Fatalf("canceled job ended %s", got.Status)
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancel did not settle (status %s)", got.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDrainingRejectsNewWork(t *testing.T) {
	s, ts := newTestServer(t, Config{Solve: stubSolve(nil)})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	code, _, raw := postSolve(t, ts, `{"spec":{"family":"FLP","scale":1,"case":0}}`)
	if code != http.StatusServiceUnavailable {
		t.Errorf("draining submit: code %d (%s), want 503", code, raw)
	}
}

func TestSolveRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Solve: stubSolve(nil)})
	cases := []struct {
		body string
		code int
	}{
		{`not json`, http.StatusBadRequest},
		{`{}`, http.StatusBadRequest},
		{`{"spec":{"family":"XLP","scale":1}}`, http.StatusUnprocessableEntity},
		{`{"spec":{"family":"FLP","scale":9}}`, http.StatusUnprocessableEntity},
		{`{"spec":{"family":"FLP","scale":1},"config":{"max_iter":100000}}`, http.StatusUnprocessableEntity},
		{`{"spec":{"family":"FLP","scale":1},"config":{"shots":-5}}`, http.StatusUnprocessableEntity},
		{`{"spec":{"family":"FLP","scale":1},"config":{"device":"nonexistent"}}`, http.StatusUnprocessableEntity},
		{`{"spec":{"family":"FLP","scale":1},"unknown_field":1}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		code, _, raw := postSolve(t, ts, tc.body)
		if code != tc.code {
			t.Errorf("%s: code %d (%s), want %d", tc.body, code, raw, tc.code)
		}
	}
}

func TestMaxVarsRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{Solve: stubSolve(nil), MaxVars: 5})
	code, _, raw := postSolve(t, ts, `{"spec":{"family":"FLP","scale":1,"case":0}}`)
	if code != http.StatusUnprocessableEntity || !strings.Contains(string(raw), "variables") {
		t.Errorf("wide problem: code %d body %s, want 422 mentioning variables", code, raw)
	}
}

func TestProblemsListing(t *testing.T) {
	_, ts := newTestServer(t, Config{Solve: stubSolve(nil)})
	raw := getBody(t, ts.URL+"/v1/problems")
	var listing struct {
		Families []string `json:"families"`
		Problems []struct {
			Label   string `json:"label"`
			NumVars int    `json:"num_vars"`
		} `json:"problems"`
	}
	if err := json.Unmarshal([]byte(raw), &listing); err != nil {
		t.Fatalf("%s: %v", raw, err)
	}
	if len(listing.Families) != 5 || len(listing.Problems) != 20 {
		t.Errorf("listing has %d families, %d problems; want 5, 20", len(listing.Families), len(listing.Problems))
	}
	for _, p := range listing.Problems {
		if p.NumVars < 1 {
			t.Errorf("%s: num_vars %d", p.Label, p.NumVars)
		}
	}
}

func TestHealthz(t *testing.T) {
	s, ts := newTestServer(t, Config{Solve: stubSolve(nil)})
	raw := getBody(t, ts.URL+"/healthz")
	// Legacy liveness shape first: CI smokes grep "status":"ok".
	if !strings.Contains(raw, `"status":"ok"`) {
		t.Errorf("healthz body: %s", raw)
	}
	var view struct {
		Status    string `json:"status"`
		State     string `json:"state"`
		Queued    int    `json:"queued"`
		Executing int    `json:"executing"`
	}
	if err := json.Unmarshal([]byte(raw), &view); err != nil {
		t.Fatalf("healthz not JSON: %s", raw)
	}
	if view.State != "ok" || view.Queued != 0 || view.Executing != 0 {
		t.Errorf("healthz view = %+v, want state ok with zero occupancy", view)
	}

	// Draining flips state but keeps the 200/"status":"ok" liveness shape.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	raw = getBody(t, ts.URL+"/healthz")
	if !strings.Contains(raw, `"status":"ok"`) || !strings.Contains(raw, `"state":"draining"`) {
		t.Errorf("draining healthz body: %s", raw)
	}
}

// TestCoalescingJoinsInflightDuplicates checks that an identical request
// arriving while the first is still executing joins that job instead of
// queuing a second solve.
func TestCoalescingJoinsInflightDuplicates(t *testing.T) {
	block := make(chan struct{})
	s, ts := newTestServer(t, Config{Executors: 1, QueueCapacity: 8, Solve: stubSolve(block)})
	body := `{"spec":{"family":"JSP","scale":1,"case":0},"config":{"seed":9}}`
	_, sr1, _ := postSolve(t, ts, body)
	_, sr2, _ := postSolve(t, ts, body)
	if sr1.JobID != sr2.JobID {
		t.Errorf("identical in-flight requests got distinct jobs %s vs %s", sr1.JobID, sr2.JobID)
	}
	close(block)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if s.jobs == nil {
		t.Fatal("unreachable")
	}
	metricsText := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(metricsText, "rasengan_jobs_coalesced_total 1") {
		t.Errorf("coalescing not counted:\n%s", grepLines(metricsText, "coalesced"))
	}
}

// TestResultPayloadDeterministic solves the same instance twice through
// separate servers (no cache sharing) and checks the payload bytes
// match — the determinism contract the cache relies on.
func TestResultPayloadDeterministic(t *testing.T) {
	req := `{"spec":{"family":"KPP","scale":1,"case":1},"config":{"seed":5,"max_iter":20},"wait_ms":60000}`
	var payloads [][]byte
	for i := 0; i < 2; i++ {
		_, ts := newTestServer(t, Config{})
		_, sr, _ := postSolve(t, ts, req)
		if sr.Status != StatusDone {
			t.Fatalf("run %d: status %s error %q", i, sr.Status, sr.Error)
		}
		payloads = append(payloads, sr.Result)
		ts.Close()
	}
	if !bytes.Equal(payloads[0], payloads[1]) {
		t.Fatalf("fresh solves differ across server instances:\n%s\n%s", payloads[0], payloads[1])
	}
}
