package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"rasengan/internal/obs"
	"rasengan/internal/store"
)

// Live introspection: the SSE stream of one job's progress, the
// /debug/events dump of the flight-recorder ring, and the slow-solve
// watchdog that snapshots anomalies to disk. Everything here observes
// running solves through the job's progress cell and the shared event
// ring; nothing feeds back into a solve.

// Events exposes the server's flight-recorder ring (the serving binary
// mounts tooling on it; tests inspect it).
func (s *Server) Events() *obs.EventRing { return s.events }

// DebugEventsHandler serves the flight-recorder window as JSON —
// mounted at /debug/events on the debug listener, next to pprof.
func (s *Server) DebugEventsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = s.events.WriteJSON(w)
	})
}

// handleJobEvents streams one job's live progress as Server-Sent Events:
//
//	event: progress   data: one obs.Progress record (folded, monotone)
//	event: done       data: {"status": <terminal status>}
//	: heartbeat       (comment line, every Config.SSEHeartbeat while idle)
//
// The stream is lossy-but-fresh: a slow consumer skips intermediate
// records instead of buffering them, so fan-out per subscriber is one
// goroutine and zero queued memory. Subscribers beyond
// Config.MaxEventStreams get 503. The stream ends after the job reaches
// a terminal state (emitting the final progress and the done event) or
// when the client disconnects.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	select {
	case s.streamSem <- struct{}{}:
		defer func() { <-s.streamSem }()
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable,
			"too many event streams (limit %d); retry later", cap(s.streamSem))
		return
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // proxies must not buffer SSE
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	flush := func() { _ = rc.Flush() }
	flush() // commit headers so clients see the stream is live

	heartbeat := time.NewTicker(s.cfg.SSEHeartbeat)
	defer heartbeat.Stop()

	var lastSeq uint64
	emit := func() bool {
		p, seq, ok := j.progress.Load()
		if !ok || seq == lastSeq {
			return true
		}
		lastSeq = seq
		data, err := json.Marshal(p)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: progress\ndata: %s\n\n", data); err != nil {
			return false
		}
		flush()
		return true
	}

	for {
		// Take the wait edge BEFORE reading, so a publish landing between
		// the read and the select wakes this pass instead of being lost.
		wake := j.progress.Wait()
		if !emit() {
			return
		}
		select {
		case <-j.done:
			emit() // final record, if one arrived after the last pass
			v := j.snapshot()
			fmt.Fprintf(w, "event: done\ndata: {\"status\":%q}\n\n", v.Status)
			flush()
			return
		case <-r.Context().Done():
			return
		case <-wake:
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			flush()
		}
	}
}

// CaptureVersion versions the anomaly-capture directory layout
// (capture.json metadata + events.json + trace.json + progress.json).
const CaptureVersion = 1

// watchJob arms the anomaly watchdog for one executing job. It watches
// the job's progress cell and, on the first trigger — no published
// iteration for Config.StallWindow ("stall"), or the solve still running
// past Config.SolveSLO ("slo") — snapshots the flight-recorder window,
// the solve's Chrome trace so far, and the collected progress series
// into CaptureDir/<job-id>/, counts it, and records an
// obs.EventAnomalyCapture. At most one capture per job. The returned
// stop func ends the watch; with both windows disabled it is a no-op.
func (s *Server) watchJob(j *job, rec *obs.Recorder, specHash string) (stop func()) {
	stall, slo := s.cfg.StallWindow, s.cfg.SolveSLO
	if stall <= 0 && slo <= 0 {
		return func() {}
	}
	stopped := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		var series []obs.Progress
		var stallC <-chan time.Time
		var stallTimer *time.Timer
		if stall > 0 {
			stallTimer = time.NewTimer(stall)
			defer stallTimer.Stop()
			stallC = stallTimer.C
		}
		var sloC <-chan time.Time
		if slo > 0 {
			sloTimer := time.NewTimer(slo)
			defer sloTimer.Stop()
			sloC = sloTimer.C
		}
		captured := false
		capture := func(reason string) {
			if captured {
				return
			}
			captured = true
			s.captureAnomaly(j, rec, specHash, reason, series)
		}
		var lastSeq uint64
		for {
			wake := j.progress.Wait()
			if p, seq, ok := j.progress.Load(); ok && seq != lastSeq {
				lastSeq = seq
				series = append(series, p)
				if stallTimer != nil {
					// Progress arrived: the stall clock restarts from now.
					if !stallTimer.Stop() {
						select {
						case <-stallTimer.C:
						default:
						}
					}
					stallTimer.Reset(stall)
				}
			}
			select {
			case <-stopped:
				return
			case <-wake:
			case <-stallC:
				capture("stall")
				stallC = nil // one stall trigger per job
			case <-sloC:
				capture("slo")
				sloC = nil
			}
		}
	}()
	return func() {
		close(stopped)
		<-finished // the capture writer must not race job settlement
	}
}

// captureAnomaly writes one watchdog snapshot. Every file lands with the
// atomic-write helpers, so a capture directory never holds torn JSON —
// crash mid-capture leaves whole files or none.
func (s *Server) captureAnomaly(j *job, rec *obs.Recorder, specHash, reason string, series []obs.Progress) {
	s.reg.CounterWith("rasengan_anomaly_captures_total",
		"Anomaly snapshots taken by the slow-solve watchdog.", [2]string{"reason", reason}).Inc()
	dir := ""
	if s.cfg.CaptureDir != "" {
		dir = filepath.Join(s.cfg.CaptureDir, j.id)
	}
	s.events.Record(obs.SevWarn, obs.EventAnomalyCapture, j.id, specHash,
		fmt.Sprintf("reason %s after %d iterations", reason, len(series)))
	s.log.Warn("anomaly capture", "job_id", j.id, "spec_hash", specHash,
		"reason", reason, "dir", dir)
	if dir == "" {
		return // no capture directory configured: counted and logged only
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		s.log.Warn("anomaly capture failed", "job_id", j.id, "error", err.Error())
		return
	}
	writeFile := func(name string, render func(*bytes.Buffer) error) {
		var buf bytes.Buffer
		if err := render(&buf); err == nil {
			err = store.WriteFileAtomic(filepath.Join(dir, name), buf.Bytes(), 0o644)
			if err == nil {
				return
			}
			s.log.Warn("anomaly capture write failed", "job_id", j.id, "file", name, "error", err.Error())
			return
		}
	}
	meta := map[string]any{
		"version":          CaptureVersion,
		"job_id":           j.id,
		"spec_hash":        specHash,
		"reason":           reason,
		"captured_unix_ms": time.Now().UnixMilli(),
		"stall_window_ms":  s.cfg.StallWindow.Milliseconds(),
		"solve_slo_ms":     s.cfg.SolveSLO.Milliseconds(),
	}
	writeFile("capture.json", func(buf *bytes.Buffer) error {
		enc := json.NewEncoder(buf)
		enc.SetEscapeHTML(false)
		return enc.Encode(meta)
	})
	writeFile("events.json", func(buf *bytes.Buffer) error {
		return s.events.WriteJSON(buf)
	})
	writeFile("trace.json", func(buf *bytes.Buffer) error {
		return rec.WriteChromeTrace(buf)
	})
	writeFile("progress.json", func(buf *bytes.Buffer) error {
		if series == nil {
			series = []obs.Progress{}
		}
		enc := json.NewEncoder(buf)
		enc.SetEscapeHTML(false)
		return enc.Encode(map[string]any{"version": CaptureVersion, "progress": series})
	})
}
