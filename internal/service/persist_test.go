package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rasengan/internal/core"
	"rasengan/internal/problems"
)

// openDurable builds a server with a data directory whose lifecycle the
// test drives explicitly (restart tests need to close one instance and
// open another over the same directory).
func openDurable(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("open durable server: %v", err)
	}
	return s, httptest.NewServer(s.Handler())
}

func shutdown(t *testing.T, s *Server, ts *httptest.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	ts.Close()
}

// TestPersistenceRestartRoundTrip: a completed job survives a clean
// restart — queryable under its original id with byte-identical result,
// and the result cache is rehydrated from the blob store.
func TestPersistenceRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	req := `{"spec":{"family":"FLP","scale":1,"case":0},"config":{"seed":1,"max_iter":20},"wait_ms":60000}`

	a, tsA := openDurable(t, Config{DataDir: dir})
	code, sr1, _ := postSolve(t, tsA, req)
	if code != http.StatusOK || sr1.Status != StatusDone {
		t.Fatalf("solve: code %d status %s error %q", code, sr1.Status, sr1.Error)
	}
	if len(sr1.Result) == 0 {
		t.Fatal("done job carried no result")
	}
	shutdown(t, a, tsA)

	b, tsB := openDurable(t, Config{DataDir: dir})
	defer shutdown(t, b, tsB)

	// Original job id resolves with the identical payload.
	body := getBody(t, tsB.URL+"/v1/jobs/"+sr1.JobID)
	var recovered solveResponse
	if err := json.Unmarshal([]byte(body), &recovered); err != nil {
		t.Fatalf("job after restart: %v (%s)", err, body)
	}
	if recovered.Status != StatusDone {
		t.Fatalf("recovered job status %s, want done", recovered.Status)
	}
	if !bytes.Equal(recovered.Result, sr1.Result) {
		t.Errorf("recovered result differs:\n%s\n%s", recovered.Result, sr1.Result)
	}

	// The cache was rehydrated: the identical request is a hit with the
	// byte-identical payload, no recomputation.
	code, sr2, _ := postSolve(t, tsB, req)
	if code != http.StatusOK || !sr2.Cached {
		t.Fatalf("after restart: code %d cached %v, want cache hit", code, sr2.Cached)
	}
	if !bytes.Equal(sr2.Result, sr1.Result) {
		t.Error("rehydrated cache payload differs from the original")
	}

	metricsText := getBody(t, tsB.URL+"/metrics")
	if !strings.Contains(metricsText, "rasengan_jobs_recovered_total 1") {
		t.Errorf("metrics missing recovered counter:\n%s", grepMetrics(metricsText, "recovered"))
	}
}

// TestCrashRecoveryReenqueuesInterrupted: a job that was running when
// the server died is re-enqueued under its original id at the next
// startup, and the replayed solve yields the byte-identical payload a
// direct solve of the same request produces.
func TestCrashRecoveryReenqueuesInterrupted(t *testing.T) {
	dir := t.TempDir()
	block := make(chan struct{})
	a, tsA := openDurable(t, Config{DataDir: dir, Executors: 1, Solve: stubSolve(block)})

	req := `{"spec":{"family":"FLP","scale":1,"case":1},"config":{"seed":7,"max_iter":15}}`
	code, sr, _ := postSolve(t, tsA, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d status %s", code, sr.Status)
	}
	// Crash: the journal goes away mid-run, so the terminal state is
	// never recorded. Later journal writes fail (logged, not fatal).
	if err := a.persist.journal.Close(); err != nil {
		t.Fatalf("simulated crash: %v", err)
	}
	close(block)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	_ = a.Drain(ctx)
	tsA.Close()

	// Restart with the real solver: the journaled submission replays.
	b, tsB := openDurable(t, Config{DataDir: dir})
	defer shutdown(t, b, tsB)

	deadline := time.Now().Add(60 * time.Second)
	var final solveResponse
	for {
		body := getBody(t, tsB.URL+"/v1/jobs/"+sr.JobID)
		if err := json.Unmarshal([]byte(body), &final); err != nil {
			t.Fatalf("job %s after restart: %v (%s)", sr.JobID, err, body)
		}
		if final.Status == StatusDone || final.Status == StatusFailed || final.Status == StatusCanceled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after restart", sr.JobID, final.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if final.Status != StatusDone {
		t.Fatalf("replayed job ended %s (%s)", final.Status, final.Error)
	}

	// Byte-identity: the replayed payload equals a direct solve.
	spec, err := problems.ParseSpec([]byte(`{"family":"FLP","scale":1,"case":1}`))
	if err != nil {
		t.Fatal(err)
	}
	p, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	opts, err := b.buildOptions(solveConfig{Seed: 7, MaxIter: 15})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Solve(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MarshalResultPayload(p, res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(final.Result, want) {
		t.Errorf("replayed payload differs from direct solve:\n%s\n%s", final.Result, want)
	}
}

// TestWarmStartStore: opt-in warm starts miss cold, hit exact on the
// second request for the same spec, hit the (family, scale) bucket for a
// sibling instance — and injection happens before the cache key, so a
// warm-started request never aliases a cold one's cache entry.
func TestWarmStartStore(t *testing.T) {
	dir := t.TempDir()
	s, ts := openDurable(t, Config{DataDir: dir})
	defer shutdown(t, s, ts)

	warm := `{"spec":{"family":"FLP","scale":1,"case":0},"config":{"seed":3,"max_iter":15,"warm_start":true},"wait_ms":60000}`
	code, sr1, _ := postSolve(t, ts, warm)
	if code != http.StatusOK || sr1.Status != StatusDone {
		t.Fatalf("cold warm-start solve: code %d status %s error %q", code, sr1.Status, sr1.Error)
	}
	if s.warmMisses.Value() != 1 {
		t.Errorf("warm misses = %v, want 1", s.warmMisses.Value())
	}

	// Same spec again: exact hit. The injected times change the resolved
	// options, so this is a NEW cache key — a computed job, not a hit on
	// the cold entry.
	code, sr2, _ := postSolve(t, ts, warm)
	if code != http.StatusOK || sr2.Status != StatusDone {
		t.Fatalf("warm solve: code %d status %s error %q", code, sr2.Status, sr2.Error)
	}
	if sr2.Cached {
		t.Error("warm-started request aliased the cold request's cache entry")
	}
	if s.warmHitsExact.Value() != 1 {
		t.Errorf("exact warm hits = %v, want 1", s.warmHitsExact.Value())
	}

	// A third warm request hits the store again (the stored entry may
	// have been refreshed by the second solve, so the cache key can
	// differ — but the lookup itself is a hit either way).
	code, sr3, _ := postSolve(t, ts, warm)
	if code != http.StatusOK || sr3.Status != StatusDone {
		t.Fatalf("repeat warm solve: code %d status %s", code, sr3.Status)
	}
	if s.warmHitsExact.Value() != 2 {
		t.Errorf("exact warm hits = %v, want 2", s.warmHitsExact.Value())
	}

	// A sibling instance (same family and scale, different case) misses
	// exact but hits the family bucket.
	sibling := `{"spec":{"family":"FLP","scale":1,"case":2},"config":{"seed":3,"max_iter":15,"warm_start":true},"wait_ms":60000}`
	code, sr4, _ := postSolve(t, ts, sibling)
	if code != http.StatusOK || sr4.Status != StatusDone {
		t.Fatalf("sibling warm solve: code %d status %s error %q", code, sr4.Status, sr4.Error)
	}
	if s.warmHitsFamily.Value() != 1 {
		t.Errorf("family warm hits = %v, want 1", s.warmHitsFamily.Value())
	}

	metricsText := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		`rasengan_warmstart_hits_total{kind="exact"} 2`,
		`rasengan_warmstart_hits_total{kind="family"} 1`,
		`rasengan_store_entries{store="warmstart"}`,
		"rasengan_warmstart_hit_ratio 0.75",
	} {
		if !strings.Contains(metricsText, want) {
			t.Errorf("metrics missing %q:\n%s", want, grepMetrics(metricsText, "warm"))
		}
	}
}

// TestWarmStartInertWithoutDataDir: warm_start on an in-memory server is
// a no-op, not an error.
func TestWarmStartInertWithoutDataDir(t *testing.T) {
	_, ts := newTestServer(t, Config{Solve: stubSolve(nil)})
	code, sr, _ := postSolve(t, ts, `{"spec":{"family":"FLP","scale":1,"case":0},"config":{"warm_start":true},"wait_ms":60000}`)
	if code != http.StatusOK || sr.Status != StatusDone {
		t.Fatalf("warm_start without data dir: code %d status %s error %q", code, sr.Status, sr.Error)
	}
}

// TestJobsListing: GET /v1/jobs paginates id-ordered summaries with a
// state filter and validated query parameters.
func TestJobsListing(t *testing.T) {
	_, ts := newTestServer(t, Config{Solve: stubSolve(nil)})
	for i := 0; i < 5; i++ {
		body := fmt.Sprintf(`{"spec":{"family":"FLP","scale":1,"case":%d},"wait_ms":60000}`, i)
		if code, sr, _ := postSolve(t, ts, body); code != http.StatusOK || sr.Status != StatusDone {
			t.Fatalf("seed job %d: code %d status %s", i, code, sr.Status)
		}
	}

	var list jobsResponse
	if err := json.Unmarshal([]byte(getBody(t, ts.URL+"/v1/jobs?state=done")), &list); err != nil {
		t.Fatal(err)
	}
	if list.Total != 5 || len(list.Jobs) != 5 {
		t.Fatalf("done listing: total %d, %d jobs, want 5/5", list.Total, len(list.Jobs))
	}
	for i := 1; i < len(list.Jobs); i++ {
		if list.Jobs[i-1].ID >= list.Jobs[i].ID {
			t.Fatalf("listing not id-ordered: %s before %s", list.Jobs[i-1].ID, list.Jobs[i].ID)
		}
	}

	// Pagination: limit 2 offset 3 yields the 4th and 5th jobs with the
	// unpaginated total.
	if err := json.Unmarshal([]byte(getBody(t, ts.URL+"/v1/jobs?limit=2&offset=3")), &list); err != nil {
		t.Fatal(err)
	}
	if list.Total != 5 || len(list.Jobs) != 2 || list.Limit != 2 || list.Offset != 3 {
		t.Fatalf("paginated listing: total %d, %d jobs, limit %d, offset %d", list.Total, len(list.Jobs), list.Limit, list.Offset)
	}

	// Filters that match nothing are empty, not errors.
	if err := json.Unmarshal([]byte(getBody(t, ts.URL+"/v1/jobs?state=failed")), &list); err != nil {
		t.Fatal(err)
	}
	if list.Total != 0 || len(list.Jobs) != 0 {
		t.Fatalf("failed listing: total %d, %d jobs, want empty", list.Total, len(list.Jobs))
	}

	// Invalid parameters are 400s.
	for _, q := range []string{"?state=bogus", "?limit=0", "?limit=9999", "?offset=-1", "?limit=x"} {
		resp, err := http.Get(ts.URL + "/v1/jobs" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /v1/jobs%s: code %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestCapacityGauges: retention and cache capacity are visible on
// /metrics, with the disabled-cache sentinel reported as 0.
func TestCapacityGauges(t *testing.T) {
	_, ts := newTestServer(t, Config{Solve: stubSolve(nil), CacheEntries: 7, JobRetention: 3})
	metricsText := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		"rasengan_cache_capacity 7",
		"rasengan_job_retention_capacity 3",
	} {
		if !strings.Contains(metricsText, want) {
			t.Errorf("metrics missing %q:\n%s", want, grepMetrics(metricsText, "capacity"))
		}
	}

	_, ts2 := newTestServer(t, Config{Solve: stubSolve(nil), CacheEntries: -1})
	if !strings.Contains(getBody(t, ts2.URL+"/metrics"), "rasengan_cache_capacity 0") {
		t.Error("disabled cache should expose capacity 0")
	}
}

// grepMetrics filters exposition text to lines containing needle, for
// readable failure messages.
func grepMetrics(text, needle string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, needle) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
