package service

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func testJob(id string) *job {
	ctx, cancel := context.WithCancel(context.Background())
	return &job{id: id, ctx: ctx, cancel: cancel, status: StatusQueued, done: make(chan struct{})}
}

func TestQueueBackpressure(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 16)
	q := newJobQueue(2, 1, func(j *job) {
		started <- struct{}{}
		<-block
		j.finish(StatusDone, nil, "")
	})
	// One job occupies the executor, two fill the queue slots.
	if err := q.Submit(testJob("a")); err != nil {
		t.Fatalf("submit a: %v", err)
	}
	<-started // the executor holds "a"; both queue slots are free
	if err := q.Submit(testJob("b")); err != nil {
		t.Fatalf("submit b: %v", err)
	}
	if err := q.Submit(testJob("c")); err != nil {
		t.Fatalf("submit c: %v", err)
	}
	if err := q.Submit(testJob("d")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit to full queue: err = %v, want ErrQueueFull", err)
	}
	if q.Depth() != 2 {
		t.Errorf("depth = %d, want 2", q.Depth())
	}
	close(block)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := q.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestQueueDrainRunsEveryAcceptedJob(t *testing.T) {
	var ran atomic.Int64
	q := newJobQueue(64, 3, func(j *job) {
		time.Sleep(time.Millisecond)
		ran.Add(1)
		j.finish(StatusDone, nil, "")
	})
	const n = 40
	accepted := 0
	for i := 0; i < n; i++ {
		if err := q.Submit(testJob("j")); err == nil {
			accepted++
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := q.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if int(ran.Load()) != accepted {
		t.Errorf("ran %d of %d accepted jobs", ran.Load(), accepted)
	}
	// Intake must stay closed after drain.
	if err := q.Submit(testJob("late")); !errors.Is(err, ErrDraining) {
		t.Errorf("post-drain submit: err = %v, want ErrDraining", err)
	}
}

func TestQueueDrainTimeout(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	q := newJobQueue(4, 1, func(j *job) { <-block })
	if err := q.Submit(testJob("stuck")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := q.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("drain of a stuck job: err = %v, want deadline exceeded", err)
	}
}

func TestQueueDrainIdempotent(t *testing.T) {
	q := newJobQueue(4, 2, func(j *job) { j.finish(StatusDone, nil, "") })
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := q.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := q.Drain(ctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}
