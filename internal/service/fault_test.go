package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"rasengan/internal/core"
)

// --- lruCache unit coverage ---

func TestLRUCachePutRefresh(t *testing.T) {
	c := newLRUCache(2)
	c.Put("a", []byte("a1"))
	c.Put("b", []byte("b1"))
	// Refreshing "a" must replace its bytes AND move it to the front, so
	// the next eviction takes "b".
	c.Put("a", []byte("a2"))
	if v, ok := c.Get("a"); !ok || string(v) != "a2" {
		t.Fatalf(`Get("a") = %q, %v; want "a2"`, v, ok)
	}
	c.Put("c", []byte("c1"))
	if _, ok := c.Get("b"); ok {
		t.Error(`"b" survived eviction; refresh did not promote "a"`)
	}
	if _, ok := c.Get("a"); !ok {
		t.Error(`refreshed "a" was evicted`)
	}
	if c.Len() != 2 {
		t.Errorf("Len() = %d, want 2", c.Len())
	}
}

func TestLRUCacheDisabled(t *testing.T) {
	for _, capacity := range []int{0, -1, -256} {
		c := newLRUCache(capacity)
		c.Put("k", []byte("v"))
		if _, ok := c.Get("k"); ok {
			t.Errorf("capacity %d: disabled cache returned a hit", capacity)
		}
		if c.Len() != 0 {
			t.Errorf("capacity %d: Len() = %d, want 0", capacity, c.Len())
		}
		hits, misses, evictions := c.Stats()
		if hits != 0 || misses != 1 || evictions != 0 {
			t.Errorf("capacity %d: stats = %d/%d/%d, want 0/1/0", capacity, hits, misses, evictions)
		}
	}
}

func TestLRUCacheEvictionAccounting(t *testing.T) {
	c := newLRUCache(3)
	for i := 0; i < 5; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
		// Interleave Gets so recency order differs from insertion order.
		c.Get("k0")
	}
	// 5 inserts into 3 slots → exactly 2 evictions, regardless of the
	// interleaved Gets (hits must never count as evictions).
	_, _, evictions := c.Stats()
	if evictions != 2 {
		t.Errorf("evictions = %d, want 2", evictions)
	}
	if c.Len() != 3 {
		t.Errorf("Len() = %d, want 3", c.Len())
	}
	// Re-putting a resident key must not evict anything.
	before := evictions
	c.Put("k4", []byte("new"))
	if _, _, after := c.Stats(); after != before {
		t.Errorf("refresh changed eviction count %d → %d", before, after)
	}
}

// --- jobStore retention ---

// TestJobStoreRetentionBounded settles far more jobs than the retention
// cap and asserts the id index stays bounded — the regression test for
// the retained-slice reslicing that pinned every evicted id.
func TestJobStoreRetentionBounded(t *testing.T) {
	const retention = 4
	s := newJobStore(retention)
	var ids []string
	for i := 0; i < 25; i++ {
		j, joined := s.create(context.Background(), fmt.Sprintf("key-%d", i), nil, core.Options{}, time.Minute)
		if joined {
			t.Fatalf("job %d unexpectedly joined", i)
		}
		j.finish(StatusDone, nil, "")
		s.settle(j)
		ids = append(ids, j.id)
	}
	s.mu.Lock()
	stored := len(s.byID)
	s.mu.Unlock()
	if stored > retention {
		t.Fatalf("byID holds %d jobs, retention is %d", stored, retention)
	}
	// The newest `retention` ids remain queryable; everything older is gone.
	for _, id := range ids[len(ids)-retention:] {
		if _, ok := s.get(id); !ok {
			t.Errorf("recent job %s evicted too early", id)
		}
	}
	for _, id := range ids[:len(ids)-retention] {
		if _, ok := s.get(id); ok {
			t.Errorf("old job %s still resident past retention", id)
		}
	}
}

func TestJobStoreSettleIdempotent(t *testing.T) {
	s := newJobStore(8)
	j, _ := s.create(context.Background(), "k", nil, core.Options{}, time.Minute)
	j.finish(StatusCanceled, nil, "canceled")
	s.settle(j)
	s.settle(j) // double settle must not occupy a second ring slot
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count != 1 {
		t.Errorf("ring count = %d after double settle, want 1", s.count)
	}
}

// --- queue drain ---

// TestRepeatedDrainNoGoroutineLeak calls Drain many times with
// already-expired contexts while a job keeps the queue pending, then
// checks the process goroutine count: the old implementation spawned one
// stuck waiter per call.
func TestRepeatedDrainNoGoroutineLeak(t *testing.T) {
	release := make(chan struct{})
	q := newJobQueue(4, 1, func(*job) { <-release })
	if err := q.Submit(&job{}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // let the executor pick the job up

	expired, cancel := context.WithCancel(context.Background())
	cancel()
	before := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		if err := q.Drain(expired); err == nil {
			t.Fatal("Drain with expired ctx returned nil while a job is pending")
		}
	}
	runtime.Gosched()
	time.Sleep(20 * time.Millisecond)
	after := runtime.NumGoroutine()
	if grown := after - before; grown > 5 {
		t.Fatalf("goroutines grew by %d across 100 Drain calls; waiter is not single-shot", grown)
	}

	close(release)
	ctx, cancelOK := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelOK()
	if err := q.Drain(ctx); err != nil {
		t.Fatalf("final drain: %v", err)
	}
}

// --- end-to-end cancellation and panic isolation against the real solver ---

func installServiceHook(t *testing.T, fn func(stage string)) {
	t.Helper()
	core.SetFaultHook(fn)
	t.Cleanup(func() { core.SetFaultHook(nil) })
}

// TestDeadlineFreesExecutor is the acceptance test of the tentpole: with
// one executor and a solve slowed to many times its deadline, the
// deadline must stop the solve cooperatively and free the executor for
// the next job — under the old detached-goroutine design the worker was
// free but the solve kept burning a core; now neither happens.
func TestDeadlineFreesExecutor(t *testing.T) {
	installServiceHook(t, func(stage string) {
		if stage == core.FaultIteration {
			time.Sleep(3 * time.Millisecond)
		}
	})
	_, ts := newTestServer(t, Config{Executors: 1, QueueCapacity: 8})

	// Job A: big budget, 150ms deadline → must die at the deadline.
	codeA, srA, _ := postSolve(t, ts,
		`{"spec":{"family":"FLP","scale":1,"case":0},"config":{"seed":1,"max_iter":300},"timeout_ms":150}`)
	if codeA != http.StatusAccepted {
		t.Fatalf("job A: code %d", codeA)
	}
	// Job B rides the same executor; if A's deadline frees it, B's tiny
	// budget finishes well inside the wait window.
	start := time.Now()
	codeB, srB, _ := postSolve(t, ts,
		`{"spec":{"family":"KPP","scale":1,"case":0},"config":{"seed":1,"max_iter":4},"wait_ms":30000}`)
	if codeB != http.StatusOK || srB.Status != StatusDone {
		t.Fatalf("job B after deadline-bound job A: code %d status %s error %q", codeB, srB.Status, srB.Error)
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Errorf("job B took %v; executor was not freed promptly", elapsed)
	}

	// Job A must have settled as a deadline failure.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var got solveResponse
		if err := json.Unmarshal([]byte(getBody(t, ts.URL+"/v1/jobs/"+srA.JobID)), &got); err != nil {
			t.Fatal(err)
		}
		if got.Status == StatusFailed {
			if !strings.Contains(got.Error, "deadline") {
				t.Errorf("job A error %q, want deadline", got.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job A stuck in %s", got.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}

	metricsText := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(metricsText, "rasengan_jobs_cancelled_total 1") {
		t.Errorf("cancelled counter wrong:\n%s", grepLines(metricsText, "cancelled"))
	}
	// The abandoned solve must not pollute the duration histogram: only
	// job B contributes a sample.
	if !strings.Contains(metricsText, "rasengan_solve_duration_seconds_count 1") {
		t.Errorf("solve duration counted a cancelled job:\n%s", grepLines(metricsText, "solve_duration_seconds_count"))
	}
}

// TestPanicIsolationKeepsServerHealthy injects a panic into the first
// solve and asserts the blast radius is exactly one job: the job fails
// with a panic error, the panic counter increments, /healthz stays OK,
// and an identical resubmission succeeds.
func TestPanicIsolationKeepsServerHealthy(t *testing.T) {
	var once sync.Once
	installServiceHook(t, func(stage string) {
		if stage == core.FaultIteration {
			once.Do(func() { panic("injected service fault") })
		}
	})
	_, ts := newTestServer(t, Config{Executors: 1})

	req := `{"spec":{"family":"FLP","scale":1,"case":0},"config":{"seed":2,"max_iter":20},"wait_ms":30000}`
	code1, sr1, _ := postSolve(t, ts, req)
	if code1 != http.StatusOK || sr1.Status != StatusFailed {
		t.Fatalf("poisoned job: code %d status %s error %q, want failed", code1, sr1.Status, sr1.Error)
	}
	if !strings.Contains(sr1.Error, "panic") {
		t.Errorf("failed job error %q does not mention the panic", sr1.Error)
	}

	if raw := getBody(t, ts.URL+"/healthz"); !strings.Contains(raw, `"status":"ok"`) {
		t.Fatalf("healthz degraded after solver panic: %s", raw)
	}
	metricsText := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(metricsText, "rasengan_solver_panics_total 1") {
		t.Errorf("panic counter wrong:\n%s", grepLines(metricsText, "panic"))
	}

	// Same request again: the hook has fired once, so this one completes —
	// the executor and pool survived the panic.
	code2, sr2, _ := postSolve(t, ts, req)
	if code2 != http.StatusOK || sr2.Status != StatusDone {
		t.Fatalf("resubmission after panic: code %d status %s error %q", code2, sr2.Status, sr2.Error)
	}
}
