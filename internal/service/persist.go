package service

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"strconv"
	"time"

	"rasengan/internal/core"
	"rasengan/internal/obs"
	"rasengan/internal/problems"
	"rasengan/internal/store"
)

// Durability layer. With Config.DataDir set, the server journals every
// accepted job (submission payload, lifecycle transitions, result blob
// key) to a CRC-framed WAL under the data directory and keeps result
// payloads in a content-addressed blob store. On startup the journal
// replays: terminal jobs come back queryable under their original ids
// with the cache rehydrated from blobs, and jobs that were queued or
// running at the crash are re-enqueued under their original ids — solves
// are deterministic functions of (spec, resolved options), so a replayed
// job produces the byte-identical payload the lost run would have.
//
// The same directory also holds the warm-start parameter store:
// converged evolution times recorded per solve, keyed by exact spec
// fingerprint and by (family, scale), and injected as
// Options.InitialTimes when a request opts in with "warm_start": true.
// Injection happens before the cache key is computed, preserving the
// cache-replay contract: the key reflects the options actually solved.

// persistence bundles the server's durable stores.
type persistence struct {
	journal *store.Journal
	blobs   *store.BlobStore
	warm    *store.WarmStore
}

// jobPayload is the journaled submission record: everything needed to
// re-run the job identically after a crash. Spec is the request's raw
// spec; Config the request's solver config; InitialTimes the RESOLVED
// warm-start injection (if any) — replay must not re-consult the warm
// store, which may have learned different parameters since.
type jobPayload struct {
	Spec         json.RawMessage `json:"spec"`
	Config       solveConfig     `json:"config"`
	Key          string          `json:"key"`
	TimeoutMS    int             `json:"timeout_ms,omitempty"`
	InitialTimes []float64       `json:"initial_times,omitempty"`
	Problem      string          `json:"problem,omitempty"`
	Family       string          `json:"family,omitempty"`
	Scale        int             `json:"scale,omitempty"`
}

// openPersistence opens the journal, blob store, and warm-start store
// under dataDir, returning the recovered journal entries.
func openPersistence(dataDir string, warmCapacity int) (*persistence, []store.JobEntry, error) {
	journal, entries, err := store.OpenJournal(dataDir)
	if err != nil {
		return nil, nil, err
	}
	blobs, err := store.OpenBlobStore(filepath.Join(dataDir, "blobs"))
	if err != nil {
		journal.Close()
		return nil, nil, err
	}
	warm, err := store.OpenWarmStore(filepath.Join(dataDir, "warmstart.json"), warmCapacity)
	if err != nil {
		journal.Close()
		return nil, nil, err
	}
	return &persistence{journal: journal, blobs: blobs, warm: warm}, entries, nil
}

// recover rebuilds server state from journal entries: terminal jobs are
// restored queryable (done jobs also rehydrate the cache from blobs),
// and interrupted jobs re-enter the queue under their original ids.
// Terminal entries beyond the retention bound are dropped, and the
// journal is re-compacted to the kept set so it cannot grow across
// restart cycles.
func (s *Server) recover(entries []store.JobEntry) error {
	var kept []store.JobEntry
	terminalStart := 0
	// Count terminal entries so only the newest `retention` are kept.
	terminals := 0
	for _, e := range entries {
		if isTerminalState(e.State) {
			terminals++
		}
	}
	drop := terminals - s.cfg.JobRetention
	for _, e := range entries {
		if isTerminalState(e.State) && terminalStart < drop {
			terminalStart++
			continue
		}
		kept = append(kept, e)
	}

	for _, e := range kept {
		s.jobs.bumpSeq(e.ID)
		switch e.State {
		case string(StatusDone):
			var pl jobPayload
			payload, err := s.persist.blobs.Get(e.Blob)
			if err != nil || json.Unmarshal(e.Data, &pl) != nil {
				s.log.Warn("recovery: dropping done job with unreadable result", "job_id", e.ID, "blob", e.Blob)
				continue
			}
			if pl.Key != "" {
				s.cache.Put(pl.Key, payload)
			}
			s.jobs.restoreTerminal(e.ID, StatusDone, payload, "")
			s.jobsRecovered.Inc()
		case string(StatusFailed), string(StatusCanceled):
			s.jobs.restoreTerminal(e.ID, Status(e.State), nil, e.Error)
			s.jobsRecovered.Inc()
		case string(StatusQueued), string(StatusRunning):
			if err := s.reenqueue(e); err != nil {
				s.log.Warn("recovery: could not re-enqueue job", "job_id", e.ID, "error", err.Error())
				s.jobs.restoreTerminal(e.ID, StatusFailed, nil, "lost at restart: "+err.Error())
			} else {
				s.jobsRecovered.Inc()
			}
		default:
			s.log.Warn("recovery: unknown journal state", "job_id", e.ID, "state", e.State)
		}
	}
	if len(entries) > 0 {
		s.events.Record(obs.SevInfo, obs.EventWALRecovery, "", "",
			fmt.Sprintf("replayed %d journal entries, recovered %.0f jobs", len(entries), s.jobsRecovered.Value()))
	}
	return s.persist.journal.Compact(kept)
}

// reenqueue rebuilds one interrupted job from its journaled payload and
// submits it under its original id.
func (s *Server) reenqueue(e store.JobEntry) error {
	var pl jobPayload
	if err := json.Unmarshal(e.Data, &pl); err != nil {
		return fmt.Errorf("payload: %w", err)
	}
	spec, err := problems.ParseSpec(pl.Spec)
	if err != nil {
		return err
	}
	p, err := spec.Build()
	if err != nil {
		return err
	}
	opts, err := s.buildOptions(pl.Config)
	if err != nil {
		return err
	}
	// Replay the resolved warm start verbatim; see jobPayload.
	opts.InitialTimes = pl.InitialTimes
	deadline := s.cfg.DefaultTimeout
	if pl.TimeoutMS > 0 {
		deadline = time.Duration(pl.TimeoutMS) * time.Millisecond
		if deadline > s.cfg.MaxTimeout {
			deadline = s.cfg.MaxTimeout
		}
	}
	j := s.jobs.restoreActive(context.Background(), e.ID, pl.Key, p, opts, deadline)
	j.family, j.scale = pl.Family, pl.Scale
	if err := s.queue.Submit(j); err != nil {
		j.finish(StatusCanceled, nil, "not enqueued at recovery")
		s.jobs.settle(j)
		return err
	}
	s.inflight.Add(1)
	s.log.Info("job re-enqueued after restart", "job_id", j.id, "spec_hash", j.key, "problem", p.Name)
	return nil
}

func isTerminalState(state string) bool {
	switch state {
	case string(StatusDone), string(StatusFailed), string(StatusCanceled):
		return true
	}
	return false
}

// journalAccept records a freshly accepted job. Journal append errors
// are logged, not fatal: the server keeps serving, durability degrades.
func (s *Server) journalAccept(j *job, spec json.RawMessage, cfg solveConfig, timeoutMS int, initialTimes []float64, problem string) {
	if s.persist == nil {
		return
	}
	pl := jobPayload{
		Spec:         spec,
		Config:       cfg,
		Key:          j.key,
		TimeoutMS:    timeoutMS,
		InitialTimes: initialTimes,
		Problem:      problem,
		Family:       j.family,
		Scale:        j.scale,
	}
	data, err := json.Marshal(pl)
	if err == nil {
		err = s.persist.journal.Submit(j.id, data)
	}
	if err != nil {
		s.log.Warn("journal submit failed", "job_id", j.id, "error", err.Error())
	}
}

// acceptedJob bundles one batch item's job with the request fields its
// journal payload needs.
type acceptedJob struct {
	j            *job
	spec         json.RawMessage
	cfg          solveConfig
	timeoutMS    int
	initialTimes []float64
	problem      string
}

// journalAcceptBatch records a group of accepted jobs with one WAL
// group-commit: the batch endpoint's accepted items share a single fsync
// instead of paying one each (see store.Journal.SubmitBatch).
func (s *Server) journalAcceptBatch(batch []acceptedJob) {
	if s.persist == nil || len(batch) == 0 {
		return
	}
	ids := make([]string, len(batch))
	payloads := make([][]byte, len(batch))
	for i, a := range batch {
		pl := jobPayload{
			Spec:         a.spec,
			Config:       a.cfg,
			Key:          a.j.key,
			TimeoutMS:    a.timeoutMS,
			InitialTimes: a.initialTimes,
			Problem:      a.problem,
			Family:       a.j.family,
			Scale:        a.j.scale,
		}
		data, err := json.Marshal(pl)
		if err != nil {
			s.log.Warn("journal batch submit failed", "job_id", a.j.id, "error", err.Error())
			return
		}
		ids[i] = a.j.id
		payloads[i] = data
	}
	if err := s.persist.journal.SubmitBatch(ids, payloads); err != nil {
		s.log.Warn("journal batch submit failed", "error", err.Error())
	}
}

// journalState records a lifecycle transition.
func (s *Server) journalState(j *job, state Status, errMsg string) {
	if s.persist == nil {
		return
	}
	if err := s.persist.journal.State(j.id, string(state), errMsg); err != nil {
		s.log.Warn("journal state failed", "job_id", j.id, "error", err.Error())
	}
}

// journalResult stores the result payload in the blob store and records
// its content address, then the terminal state. Called before finish()
// publishes the result, so a crash after clients saw "done" implies the
// journal already has the blob.
func (s *Server) journalResult(j *job, payload []byte) {
	if s.persist == nil {
		return
	}
	key, err := s.persist.blobs.Put(payload)
	if err == nil {
		err = s.persist.journal.Result(j.id, key)
	}
	if err != nil {
		s.log.Warn("journal result failed", "job_id", j.id, "error", err.Error())
	}
}

// warmKeyFamily builds the coarse warm-start key for a generator family
// and scale.
func warmKeyFamily(family string, scale int) string {
	return "family:" + family + ":" + strconv.Itoa(scale)
}

// lookupWarmStart returns warm-start evolution times for the request —
// exact spec fingerprint first, then the (family, scale) bucket — or
// nil on a miss. The caller injects the result into
// Options.InitialTimes BEFORE the cache key is computed: the key
// reflects the options actually solved, which keeps the cache-replay
// byte-identity contract intact.
//
// Every candidate is dimension-checked against the request's own
// schedule before injection. Family buckets hold times from whichever
// instance of the family last converged, and different scales (or
// different schedule options) can produce different parameter counts —
// injecting a wrong-length vector would not mis-seed the solve
// (core.Solve ignores mismatched InitialTimes) but would silently fork
// the cache key, so identical requests stop coalescing. A mismatch
// counts rasengan_warmstart_dim_mismatch_total and falls through to the
// next source.
func (s *Server) lookupWarmStart(spec *problems.Spec, specHash string, p *problems.Problem, opts core.Options) []float64 {
	if s.persist == nil {
		return nil
	}
	if times, ok := s.persist.warm.Get("spec:" + specHash); ok {
		if s.warmDimOK(specHash, p, opts, times) {
			s.warmHitsExact.Inc()
			s.events.Record(obs.SevInfo, obs.EventWarmStart, "", specHash,
				fmt.Sprintf("exact spec match (%d params)", len(times)))
			return times
		}
	}
	if spec.Family != "" {
		if times, ok := s.persist.warm.Get(warmKeyFamily(spec.Family, spec.Scale)); ok {
			if s.warmDimOK(specHash, p, opts, times) {
				s.warmHitsFamily.Inc()
				s.events.Record(obs.SevInfo, obs.EventWarmStart, "", specHash,
					fmt.Sprintf("%s (%d params)", warmKeyFamily(spec.Family, spec.Scale), len(times)))
				return times
			}
		}
	}
	s.warmMisses.Inc()
	return nil
}

// warmDimKey keys the schedule-parameter-count memo. The spec hash pins
// the problem; of the solver knobs the API exposes, only the schedule
// options change the parameter count.
func warmDimKey(specHash string, opts core.Options) string {
	return specHash + "|sparsest=" + strconv.FormatBool(opts.Schedule.SparsestFirst)
}

// warmDimOK reports whether a stored warm-start vector matches the
// parameter count of the schedule this request will actually solve.
func (s *Server) warmDimOK(specHash string, p *problems.Problem, opts core.Options, times []float64) bool {
	key := warmDimKey(specHash, opts)
	var want int
	if v, ok := s.warmDims.Load(key); ok {
		want = v.(int)
	} else {
		n, err := core.ScheduleParamCount(p, opts)
		if err != nil {
			// The solve itself would fail the same way; don't warm-start it.
			return false
		}
		s.warmDims.Store(key, n)
		want = n
	}
	if len(times) != want {
		s.warmDimSkips.Inc()
		s.events.Record(obs.SevWarn, obs.EventWarmStartDimMismatch, "", specHash,
			fmt.Sprintf("stored %d params, schedule wants %d", len(times), want))
		s.log.Warn("warm start skipped: dimension mismatch",
			"spec_hash", specHash, "stored", len(times), "want", want)
		return false
	}
	return true
}

// recordWarm stores a successful solve's converged evolution times
// under the exact and family keys for future warm starts.
func (s *Server) recordWarm(j *job, times []float64) {
	if s.persist == nil || len(times) == 0 {
		return
	}
	specHash, _, ok := splitKey(j.key)
	if !ok {
		return
	}
	// Prime the dimension memo: a solve that just produced len(times)
	// parameters pins the schedule's parameter count for this spec.
	s.warmDims.Store(warmDimKey(specHash, j.opts), len(times))
	if err := s.persist.warm.Put("spec:"+specHash, times); err != nil {
		s.log.Warn("warm store write failed", "job_id", j.id, "error", err.Error())
		return
	}
	if j.family != "" {
		if err := s.persist.warm.Put(warmKeyFamily(j.family, j.scale), times); err != nil {
			s.log.Warn("warm store write failed", "job_id", j.id, "error", err.Error())
		}
	}
}

// splitKey splits a cache key into spec hash and options fingerprint.
func splitKey(key string) (specHash, fingerprint string, ok bool) {
	for i := 0; i < len(key); i++ {
		if key[i] == '/' {
			return key[:i], key[i+1:], true
		}
	}
	return "", "", false
}

// Close releases the durable stores (flushes and closes the journal
// WAL). Call after Drain; a server without a data directory is a no-op.
func (s *Server) Close() error {
	if s.persist == nil {
		return nil
	}
	return s.persist.journal.Close()
}
