package service

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// TestStageMetricsAndJobTelemetry drives one real solve through the
// service and checks the three observability surfaces it feeds: per-stage
// duration histograms on /metrics, the solves-running/queue gauges, and
// the convergence trace on the job response.
func TestStageMetricsAndJobTelemetry(t *testing.T) {
	_, ts := newTestServer(t, Config{Executors: 1})
	code, sr, _ := postSolve(t, ts,
		`{"spec":{"family":"FLP","scale":1,"case":0},"config":{"seed":5,"max_iter":30},"wait_ms":30000}`)
	if code != http.StatusOK || sr.Status != StatusDone {
		t.Fatalf("solve: code %d status %s error %q", code, sr.Status, sr.Error)
	}

	if len(sr.Telemetry) == 0 {
		t.Fatal("computed job carried no convergence telemetry")
	}
	prev := -1
	for _, it := range sr.Telemetry {
		if it.Iter <= prev {
			t.Errorf("telemetry iterations not strictly increasing: %d after %d", it.Iter, prev)
		}
		prev = it.Iter
	}
	// The job endpoint replays the same telemetry.
	var again solveResponse
	if err := json.Unmarshal([]byte(getBody(t, ts.URL+"/v1/jobs/"+sr.JobID)), &again); err != nil {
		t.Fatal(err)
	}
	if len(again.Telemetry) != len(sr.Telemetry) {
		t.Errorf("GET /v1/jobs telemetry has %d records, solve response had %d",
			len(again.Telemetry), len(sr.Telemetry))
	}

	metricsText := getBody(t, ts.URL+"/metrics")
	stages := 0
	for _, stage := range []string{"solve", "basis", "hamiltonian", "circuit", "iteration", "segment", "sample", "final_eval"} {
		if strings.Contains(metricsText, `rasengan_stage_duration_seconds_count{stage="`+stage+`"} 1`) {
			stages++
		}
	}
	if stages < 4 {
		t.Errorf("only %d stage labels on rasengan_stage_duration_seconds, want >= 4:\n%s",
			stages, grepLines(metricsText, "stage_duration"))
	}
	if !strings.Contains(metricsText, "rasengan_solves_running 0") {
		t.Errorf("solves-running gauge did not return to zero:\n%s", grepLines(metricsText, "solves_running"))
	}
	if !strings.Contains(metricsText, "rasengan_queue_depth 0") {
		t.Errorf("queue depth gauge missing:\n%s", grepLines(metricsText, "queue_depth"))
	}
}

// TestCacheHitOmitsTelemetry locks in the payload-determinism rule:
// telemetry rides the job object, so a cache hit replays the identical
// result bytes and simply has no telemetry to show.
func TestCacheHitOmitsTelemetry(t *testing.T) {
	_, ts := newTestServer(t, Config{Executors: 1})
	body := `{"spec":{"family":"FLP","scale":1,"case":0},"config":{"seed":5,"max_iter":30},"wait_ms":30000}`
	_, first, _ := postSolve(t, ts, body)
	if first.Status != StatusDone || first.Cached {
		t.Fatalf("first solve: status %s cached %v", first.Status, first.Cached)
	}
	_, second, _ := postSolve(t, ts, body)
	if !second.Cached {
		t.Fatalf("second identical solve not served from cache")
	}
	if len(second.Telemetry) != 0 {
		t.Errorf("cache hit carried telemetry (%d records); it must replay result bytes only", len(second.Telemetry))
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Error("cached result bytes differ from the computed ones")
	}
}

// TestStructuredLogsCarryJobFields wires a JSON slog handler into the
// service and checks the lifecycle records carry job_id and spec_hash.
func TestStructuredLogsCarryJobFields(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(syncWriter{mu: &mu, w: &buf}, nil))
	_, ts := newTestServer(t, Config{Executors: 1, Logger: logger})
	code, sr, _ := postSolve(t, ts,
		`{"spec":{"family":"FLP","scale":1,"case":0},"config":{"seed":6,"max_iter":20},"wait_ms":30000}`)
	if code != http.StatusOK || sr.Status != StatusDone {
		t.Fatalf("solve: code %d status %s error %q", code, sr.Status, sr.Error)
	}

	mu.Lock()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	mu.Unlock()
	want := map[string]bool{"job accepted": false, "job running": false, "job done": false}
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %q: %v", line, err)
		}
		msg, _ := rec["msg"].(string)
		if _, tracked := want[msg]; !tracked {
			continue
		}
		if rec["job_id"] != sr.JobID {
			t.Errorf("%q record has job_id %v, want %v", msg, rec["job_id"], sr.JobID)
		}
		if hash, _ := rec["spec_hash"].(string); hash == "" {
			t.Errorf("%q record missing spec_hash: %v", msg, rec)
		}
		want[msg] = true
	}
	for msg, seen := range want {
		if !seen {
			t.Errorf("no %q log record emitted; got:\n%s", msg, strings.Join(lines, "\n"))
		}
	}
}

// syncWriter serializes concurrent slog writes from executor goroutines.
type syncWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (s syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
