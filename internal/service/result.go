package service

import (
	"encoding/json"
	"sort"

	"rasengan/internal/core"
	"rasengan/internal/problems"
)

// maxDistributionEntries caps how many output states the wire payload
// carries. Entries are ordered by probability (descending, bitstring
// ascending on ties) so the cap keeps the most probable states and the
// payload stays deterministic.
const maxDistributionEntries = 64

// resultPayload is the deterministic wire form of a solve result. It
// deliberately excludes anything wall-clock dependent (the measured
// compile-time component of the latency breakdown): a given
// (spec, config) pair must marshal to byte-identical JSON whether it was
// computed fresh by one worker, by eight, or served from the cache.
type resultPayload struct {
	Problem        string  `json:"problem"`
	Family         string  `json:"family"`
	NumVars        int     `json:"num_vars"`
	NumConstraints int     `json:"num_constraints"`
	Sense          string  `json:"sense"`
	BestSolution   string  `json:"best_solution"`
	BestValue      float64 `json:"best_value"`
	Expectation    float64 `json:"expectation"`

	InConstraintsRate   float64 `json:"in_constraints_rate"`
	RawFeasibleShotRate float64 `json:"raw_feasible_shot_rate"`

	NumParams    int `json:"num_params"`
	NumSegments  int `json:"num_segments"`
	SegmentDepth int `json:"segment_depth"`
	TotalCX      int `json:"total_cx"`
	Iterations   int `json:"iterations"`
	Evals        int `json:"evals"`

	// Modeled latency components only — deterministic functions of the
	// evaluation count and device timing model.
	ModeledQuantumMS   float64 `json:"modeled_quantum_ms"`
	ModeledClassicalMS float64 `json:"modeled_classical_ms"`

	Distribution          []distEntry `json:"distribution"`
	DistributionTruncated int         `json:"distribution_truncated,omitempty"`
}

type distEntry struct {
	Solution    string  `json:"x"`
	Probability float64 `json:"p"`
	Objective   float64 `json:"f"`
}

// MarshalResultPayload renders the deterministic wire payload of a solve.
// It is exported for the verify subsystem, whose determinism metamorphic
// relations (workers=1 vs N, repeat solves, row-reordered constraints)
// compare exactly these bytes — the same bytes the cache replays on a hit.
func MarshalResultPayload(p *problems.Problem, res *core.Result) ([]byte, error) {
	return marshalResult(p, res)
}

// marshalResult renders the deterministic wire payload of a solve.
func marshalResult(p *problems.Problem, res *core.Result) ([]byte, error) {
	entries := make([]distEntry, 0, len(res.Distribution))
	for x, prob := range res.Distribution {
		entries = append(entries, distEntry{Solution: x.String(), Probability: prob, Objective: p.Objective(x)})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Probability != entries[j].Probability {
			return entries[i].Probability > entries[j].Probability
		}
		return entries[i].Solution < entries[j].Solution
	})
	truncated := 0
	if len(entries) > maxDistributionEntries {
		truncated = len(entries) - maxDistributionEntries
		entries = entries[:maxDistributionEntries]
	}
	return json.Marshal(resultPayload{
		Problem:             p.Name,
		Family:              p.Family,
		NumVars:             p.N,
		NumConstraints:      p.NumConstraints(),
		Sense:               p.Sense.String(),
		BestSolution:        res.BestSolution.String(),
		BestValue:           res.BestValue,
		Expectation:         res.Expectation,
		InConstraintsRate:   res.InConstraintsRate,
		RawFeasibleShotRate: res.RawFeasibleShotRate,
		NumParams:           res.NumParams,
		NumSegments:         res.NumSegments,
		SegmentDepth:        res.SegmentDepth,
		TotalCX:             res.TotalCX,
		Iterations:          res.Iterations,
		Evals:               res.Evals,
		ModeledQuantumMS:    res.Latency.QuantumMS,
		ModeledClassicalMS:  res.Latency.ClassicalMS,
		Distribution:        entries,
		DistributionTruncated: truncated,
	})
}
