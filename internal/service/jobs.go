package service

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"rasengan/internal/core"
	"rasengan/internal/obs"
	"rasengan/internal/problems"
)

// Status is the lifecycle state of a job.
type Status string

const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// job is one accepted solve. Its result bytes are the deterministic
// payload of result.go; the same key always yields the same bytes.
type job struct {
	id string
	// seq is the monotone submit sequence the id was minted from (parsed
	// back out of the id on journal replay). Listings sort on it: the id
	// string is zero-padded to 8 digits, so lexicographic order silently
	// diverges from submission order past job-99999999.
	seq uint64
	key string // spec hash + config fingerprint (cache key)

	// family/scale identify the generator bucket for warm-start
	// recording; empty/zero for inline specs.
	family string
	scale  int

	problem *problems.Problem
	opts    core.Options

	ctx    context.Context
	cancel context.CancelFunc

	// progress is the job's live-introspection cell: the solver folds one
	// record per optimizer iteration into it, and the job view, the SSE
	// stream, and the stall watchdog read it. Nil on cache-hit and
	// journal-restored terminal jobs (they never run).
	progress *obs.ProgressCell

	mu       sync.Mutex
	status   Status
	result   []byte
	errMsg   string
	cached   bool
	accepted time.Time
	// telemetry is the winning start's convergence trace. It lives on the
	// job, never in the result bytes: the cached payload must stay
	// byte-identical for one key, and these records carry wall times.
	telemetry []core.IterationTelemetry

	// settled marks the job as counted in the store's retention ring;
	// guarded by the store's mutex, not the job's.
	settled bool

	done chan struct{}
}

func (j *job) snapshot() jobView {
	j.mu.Lock()
	v := jobView{
		ID:        j.id,
		Status:    j.status,
		Cached:    j.cached,
		Error:     j.errMsg,
		Result:    j.result,
		Telemetry: j.telemetry,
	}
	j.mu.Unlock()
	// Live progress rides only non-terminal views: terminal responses are
	// summarized by the deterministic result payload and the convergence
	// telemetry, and must not grow nondeterministic live-state fields.
	if v.Status == StatusQueued || v.Status == StatusRunning {
		if p, _, ok := j.progress.Load(); ok {
			v.Progress = &p
		}
	}
	return v
}

// setConvergence attaches the solve's convergence telemetry; call before
// finish so a snapshot taken after the done signal always sees it.
func (j *job) setConvergence(c []core.IterationTelemetry) {
	j.mu.Lock()
	j.telemetry = c
	j.mu.Unlock()
}

func (j *job) setRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusQueued {
		return false
	}
	j.status = StatusRunning
	return true
}

// finish moves the job to a terminal state exactly once.
func (j *job) finish(status Status, result []byte, errMsg string) {
	j.mu.Lock()
	if j.status == StatusDone || j.status == StatusFailed || j.status == StatusCanceled {
		j.mu.Unlock()
		return
	}
	j.status = status
	j.result = result
	j.errMsg = errMsg
	j.mu.Unlock()
	j.cancel()
	close(j.done)
}

// jobView is the externally visible snapshot of a job.
type jobView struct {
	ID        string                    `json:"job_id"`
	Status    Status                    `json:"status"`
	Cached    bool                      `json:"cached"`
	Error     string                    `json:"error,omitempty"`
	Result    []byte                    `json:"-"`
	Telemetry []core.IterationTelemetry `json:"telemetry,omitempty"`
	// Progress is the latest live-progress record; present only while the
	// job is queued/running and its solve has published at least once.
	Progress *obs.Progress `json:"progress,omitempty"`
}

// jobStore tracks jobs by id, deduplicates in-flight work by content
// address (single-flight), and bounds how many terminal jobs it retains.
type jobStore struct {
	mu       sync.Mutex
	seq      uint64
	byID     map[string]*job
	inflight map[string]*job // key → queued/running job
	// retained is a fixed-capacity ring of terminal job ids in completion
	// order: head indexes the oldest, count ≤ retention. A ring rather
	// than an append-and-reslice slice because retained[1:] keeps the
	// evicted id's backing memory reachable for the life of the slice —
	// under sustained traffic that pinned every id ever retained.
	retained  []string
	head      int
	count     int
	retention int
}

func newJobStore(retention int) *jobStore {
	if retention < 1 {
		retention = 1
	}
	return &jobStore{
		byID:      map[string]*job{},
		inflight:  map[string]*job{},
		retained:  make([]string, retention),
		retention: retention,
	}
}

// create registers a new job for key, or returns the already in-flight
// job carrying the same key (joined == true).
func (s *jobStore) create(base context.Context, key string, p *problems.Problem, opts core.Options, deadline time.Duration) (j *job, joined bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.inflight[key]; ok {
		return existing, true
	}
	s.seq++
	ctx, cancel := context.WithTimeout(base, deadline)
	j = &job{
		id:       fmt.Sprintf("job-%08d", s.seq),
		seq:      s.seq,
		key:      key,
		problem:  p,
		opts:     opts,
		ctx:      ctx,
		cancel:   cancel,
		progress: obs.NewProgressCell(),
		status:   StatusQueued,
		accepted: time.Now(),
		done:     make(chan struct{}),
	}
	s.byID[j.id] = j
	s.inflight[key] = j
	return j, false
}

// createDone registers an already-terminal job (cache hits get a job id
// too, so GET /v1/jobs is uniform).
func (s *jobStore) createDone(result []byte, cached bool) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	j := &job{
		id:      fmt.Sprintf("job-%08d", s.seq),
		seq:     s.seq,
		ctx:     ctx,
		cancel:  cancel,
		status:  StatusDone,
		result:  result,
		cached:  cached,
		settled: true,
		done:    make(chan struct{}),
	}
	close(j.done)
	s.byID[j.id] = j
	s.retain(j.id)
	return j
}

// settle removes the job from the in-flight index once terminal and
// applies the retention bound.
func (s *jobStore) settle(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.settled {
		// Settling twice (e.g. a failed Submit path racing a worker) must
		// not occupy two ring slots for one job.
		return
	}
	j.settled = true
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	s.retain(j.id)
}

// retain must be called with s.mu held.
func (s *jobStore) retain(id string) {
	if s.count < s.retention {
		s.retained[(s.head+s.count)%s.retention] = id
		s.count++
		return
	}
	delete(s.byID, s.retained[s.head])
	s.retained[s.head] = id
	s.head = (s.head + 1) % s.retention
}

func (s *jobStore) get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byID[id]
	return j, ok
}

// lookupInflight returns the queued/running job carrying key, if any.
// The HTTP layer consults it before reserving a queue slot so coalesced
// duplicates never contend for capacity.
func (s *jobStore) lookupInflight(key string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.inflight[key]
	return j, ok
}

// seqFromID recovers the submit sequence embedded in a job id; 0 for
// foreign ids (which then sort first, by id, among themselves).
func seqFromID(id string) uint64 {
	var n uint64
	if _, err := fmt.Sscanf(id, "job-%d", &n); err != nil {
		return 0
	}
	return n
}

// bumpSeq advances the id sequence past a recovered job id, so jobs
// accepted after a restart never collide with journaled ones.
func (s *jobStore) bumpSeq(id string) {
	n := seqFromID(id)
	if n == 0 {
		return
	}
	s.mu.Lock()
	if n > s.seq {
		s.seq = n
	}
	s.mu.Unlock()
}

// restoreTerminal registers a terminal job under its original id
// (journal recovery: the job stays queryable across restarts).
func (s *jobStore) restoreTerminal(id string, status Status, result []byte, errMsg string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	j := &job{
		id:      id,
		seq:     seqFromID(id),
		ctx:     ctx,
		cancel:  cancel,
		status:  status,
		result:  result,
		errMsg:  errMsg,
		settled: true,
		done:    make(chan struct{}),
	}
	close(j.done)
	s.byID[id] = j
	s.retain(id)
	return j
}

// restoreActive registers a recovered queued job under its original id;
// the caller submits it to the queue.
func (s *jobStore) restoreActive(base context.Context, id, key string, p *problems.Problem, opts core.Options, deadline time.Duration) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	ctx, cancel := context.WithTimeout(base, deadline)
	j := &job{
		id:       id,
		seq:      seqFromID(id),
		key:      key,
		problem:  p,
		opts:     opts,
		ctx:      ctx,
		cancel:   cancel,
		progress: obs.NewProgressCell(),
		status:   StatusQueued,
		accepted: time.Now(),
		done:     make(chan struct{}),
	}
	s.byID[id] = j
	s.inflight[key] = j
	return j
}

// list returns job summaries in submission order, optionally filtered
// by status, with offset/limit pagination. total is the filtered count
// before pagination. Sorting on the numeric submit sequence (not the id
// string, and certainly not map iteration order) keeps page contents
// stable across journal replay and restarts.
func (s *jobStore) list(status Status, offset, limit int) (views []jobView, total int) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.byID))
	for _, j := range s.byID {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool {
		if jobs[i].seq != jobs[k].seq {
			return jobs[i].seq < jobs[k].seq
		}
		return jobs[i].id < jobs[k].id
	})
	views = []jobView{}
	for _, j := range jobs {
		v := j.snapshot()
		if status != "" && v.Status != status {
			continue
		}
		total++
		if total <= offset || len(views) >= limit {
			continue
		}
		v.Result = nil // listings are summaries, not payloads
		v.Telemetry = nil
		v.Progress = nil
		views = append(views, v)
	}
	return views, total
}
