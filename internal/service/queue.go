package service

import (
	"context"
	"errors"
	"sync"
)

// Queue errors surfaced to the HTTP layer.
var (
	// ErrQueueFull is returned when the bounded queue has no free slot;
	// the API maps it to 429 Too Many Requests (backpressure).
	ErrQueueFull = errors.New("service: queue full")
	// ErrDraining is returned once graceful shutdown has begun; the API
	// maps it to 503 Service Unavailable.
	ErrDraining = errors.New("service: draining")
)

// jobQueue is a bounded FIFO of accepted jobs with a fixed set of
// executor goroutines. Accepting a job is a promise: once Submit
// succeeds the job reaches a terminal state even if the service drains —
// Drain stops intake, then waits for every accepted job to settle.
type jobQueue struct {
	ch      chan *job
	run     func(*job)
	mu      sync.Mutex
	settled chan struct{}  // non-nil once draining; closed when all jobs settle
	pending sync.WaitGroup // accepted but not yet terminal
	workers sync.WaitGroup
	// reserved counts slots promised by Reserve but not yet turned into a
	// queued job by Commit (or returned by CancelReservation). Reserving
	// before creating the job lets the HTTP layer reject synchronously —
	// with no journal write and no job id burned — while still
	// guaranteeing Commit a slot.
	reserved int
}

// newJobQueue starts `executors` worker goroutines consuming a queue of
// the given capacity. run must move the job to a terminal state.
func newJobQueue(capacity, executors int, run func(*job)) *jobQueue {
	if capacity < 1 {
		capacity = 1
	}
	if executors < 1 {
		executors = 1
	}
	q := &jobQueue{ch: make(chan *job, capacity), run: run}
	q.workers.Add(executors)
	for i := 0; i < executors; i++ {
		go func() {
			defer q.workers.Done()
			for j := range q.ch {
				q.run(j)
				q.pending.Done()
			}
		}()
	}
	return q
}

// Submit enqueues without blocking. A full queue is backpressure, not an
// error state — the caller converts it to 429 and the client retries.
func (q *jobQueue) Submit(j *job) error {
	q.mu.Lock()
	if q.settled != nil {
		q.mu.Unlock()
		return ErrDraining
	}
	// Reserve the pending slot before the send so Drain cannot observe a
	// moment where the job is in the channel but untracked.
	q.pending.Add(1)
	select {
	case q.ch <- j:
		q.mu.Unlock()
		return nil
	default:
		q.pending.Done()
		q.mu.Unlock()
		return ErrQueueFull
	}
}

// Reserve claims a queue slot without enqueueing anything. It fails fast
// with ErrQueueFull or ErrDraining — the two synchronous rejections —
// so the caller can answer 429/503 before journaling or creating a job.
// A successful Reserve must be followed by exactly one Commit or
// CancelReservation.
func (q *jobQueue) Reserve() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.settled != nil {
		return ErrDraining
	}
	if len(q.ch)+q.reserved >= cap(q.ch) {
		return ErrQueueFull
	}
	q.reserved++
	return nil
}

// CancelReservation returns a Reserved slot unused (e.g. the request
// coalesced onto an in-flight job after the slot was claimed).
func (q *jobQueue) CancelReservation() {
	q.mu.Lock()
	if q.reserved > 0 {
		q.reserved--
	}
	q.mu.Unlock()
}

// Commit enqueues a job under a previously Reserved slot. It can only
// fail with ErrDraining (shutdown began between Reserve and Commit): the
// reservation guarantees channel capacity.
func (q *jobQueue) Commit(j *job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.reserved > 0 {
		q.reserved--
	}
	if q.settled != nil {
		return ErrDraining
	}
	// Reserve the pending slot before the send so Drain cannot observe a
	// moment where the job is in the channel but untracked.
	q.pending.Add(1)
	select {
	case q.ch <- j:
		return nil
	default:
		// Unreachable while every enqueue goes through Reserve; kept as a
		// defensive backstop rather than a blocking send.
		q.pending.Done()
		return ErrQueueFull
	}
}

// Depth returns how many accepted jobs are waiting for an executor.
func (q *jobQueue) Depth() int { return len(q.ch) }

// Draining reports whether graceful shutdown has begun (new work is
// being rejected with ErrDraining). Health checks surface this so a
// cluster gateway can eject the backend before its 503s pile up.
func (q *jobQueue) Draining() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.settled != nil
}

// Load returns occupied plus reserved slots — the admission-control view
// of queue pressure.
func (q *jobQueue) Load() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.ch) + q.reserved
}

// Capacity returns the queue's slot count.
func (q *jobQueue) Capacity() int { return cap(q.ch) }

// Drain stops intake and waits until every accepted job has settled (or
// ctx expires). It is idempotent and single-shot internally: the first
// call spawns the one goroutine that waits out the pending set, closes
// the channel, and signals completion; every later call — including
// retries after a ctx expiry — just waits on the same signal, so
// repeated Drain calls cannot accumulate goroutines.
func (q *jobQueue) Drain(ctx context.Context) error {
	q.mu.Lock()
	if q.settled == nil {
		q.settled = make(chan struct{})
		settled := q.settled
		go func() {
			q.pending.Wait()
			close(q.ch)
			q.workers.Wait()
			close(settled)
		}()
	}
	settled := q.settled
	q.mu.Unlock()

	select {
	case <-settled:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
