package service

import (
	"context"
	"errors"
	"sync"
)

// Queue errors surfaced to the HTTP layer.
var (
	// ErrQueueFull is returned when the bounded queue has no free slot;
	// the API maps it to 429 Too Many Requests (backpressure).
	ErrQueueFull = errors.New("service: queue full")
	// ErrDraining is returned once graceful shutdown has begun; the API
	// maps it to 503 Service Unavailable.
	ErrDraining = errors.New("service: draining")
)

// jobQueue is a bounded FIFO of accepted jobs with a fixed set of
// executor goroutines. Accepting a job is a promise: once Submit
// succeeds the job reaches a terminal state even if the service drains —
// Drain stops intake, then waits for every accepted job to settle.
type jobQueue struct {
	ch      chan *job
	run     func(*job)
	mu      sync.Mutex
	settled chan struct{}  // non-nil once draining; closed when all jobs settle
	pending sync.WaitGroup // accepted but not yet terminal
	workers sync.WaitGroup
}

// newJobQueue starts `executors` worker goroutines consuming a queue of
// the given capacity. run must move the job to a terminal state.
func newJobQueue(capacity, executors int, run func(*job)) *jobQueue {
	if capacity < 1 {
		capacity = 1
	}
	if executors < 1 {
		executors = 1
	}
	q := &jobQueue{ch: make(chan *job, capacity), run: run}
	q.workers.Add(executors)
	for i := 0; i < executors; i++ {
		go func() {
			defer q.workers.Done()
			for j := range q.ch {
				q.run(j)
				q.pending.Done()
			}
		}()
	}
	return q
}

// Submit enqueues without blocking. A full queue is backpressure, not an
// error state — the caller converts it to 429 and the client retries.
func (q *jobQueue) Submit(j *job) error {
	q.mu.Lock()
	if q.settled != nil {
		q.mu.Unlock()
		return ErrDraining
	}
	// Reserve the pending slot before the send so Drain cannot observe a
	// moment where the job is in the channel but untracked.
	q.pending.Add(1)
	select {
	case q.ch <- j:
		q.mu.Unlock()
		return nil
	default:
		q.pending.Done()
		q.mu.Unlock()
		return ErrQueueFull
	}
}

// Depth returns how many accepted jobs are waiting for an executor.
func (q *jobQueue) Depth() int { return len(q.ch) }

// Capacity returns the queue's slot count.
func (q *jobQueue) Capacity() int { return cap(q.ch) }

// Drain stops intake and waits until every accepted job has settled (or
// ctx expires). It is idempotent and single-shot internally: the first
// call spawns the one goroutine that waits out the pending set, closes
// the channel, and signals completion; every later call — including
// retries after a ctx expiry — just waits on the same signal, so
// repeated Drain calls cannot accumulate goroutines.
func (q *jobQueue) Drain(ctx context.Context) error {
	q.mu.Lock()
	if q.settled == nil {
		q.settled = make(chan struct{})
		settled := q.settled
		go func() {
			q.pending.Wait()
			close(q.ch)
			q.workers.Wait()
			close(settled)
		}()
	}
	settled := q.settled
	q.mu.Unlock()

	select {
	case <-settled:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
