package service

import (
	"fmt"
	"testing"
)

func TestLRUBasicHitMiss(t *testing.T) {
	c := newLRUCache(2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", []byte("1"))
	v, ok := c.Get("a")
	if !ok || string(v) != "1" {
		t.Fatalf("got %q, %v", v, ok)
	}
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", hits, misses)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := newLRUCache(2)
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	c.Get("a") // promote a; b is now LRU
	c.Put("c", []byte("3"))
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should have survived (recently used)")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c should be resident")
	}
	if _, _, ev := c.Stats(); ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
}

func TestLRURefreshDoesNotGrow(t *testing.T) {
	c := newLRUCache(2)
	c.Put("a", []byte("1"))
	c.Put("a", []byte("2"))
	if c.Len() != 1 {
		t.Errorf("len = %d after double put, want 1", c.Len())
	}
	v, _ := c.Get("a")
	if string(v) != "2" {
		t.Errorf("refresh did not replace value: %q", v)
	}
}

func TestLRUDisabled(t *testing.T) {
	c := newLRUCache(-1)
	c.Put("a", []byte("1"))
	if _, ok := c.Get("a"); ok {
		t.Error("disabled cache stored an entry")
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := newLRUCache(16)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g*i)%32)
				c.Put(k, []byte(k))
				c.Get(k)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if c.Len() > 16 {
		t.Errorf("len = %d exceeds capacity", c.Len())
	}
}
