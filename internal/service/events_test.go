package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rasengan/internal/core"
	"rasengan/internal/obs"
	"rasengan/internal/problems"
)

// progressSolve returns a SolveFunc that publishes pre records into the
// job's progress cell, blocks on release (when non-nil), publishes post
// more, and returns a canned result. Energies strictly improve so the
// published stream exercises the incumbent fold.
func progressSolve(pre, post int, release <-chan struct{}) SolveFunc {
	return func(ctx context.Context, p *problems.Problem, opts core.Options) (*core.Result, error) {
		cell := opts.Telemetry.Progress
		n := 0
		pub := func() {
			cell.Publish(obs.Progress{Start: 0, Iter: n, BestEnergy: float64(-n), ParamNorm: 1})
			n++
		}
		for i := 0; i < pre; i++ {
			pub()
		}
		if release != nil {
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		for i := 0; i < post; i++ {
			pub()
		}
		return &core.Result{
			BestSolution: p.Init,
			BestValue:    p.Objective(p.Init),
			Expectation:  p.Objective(p.Init),
		}, nil
	}
}

// TestStatusRecorderFlushPassthrough locks in the SSE prerequisite: the
// instrumentation wrapper must still look flushable — both directly and
// through http.ResponseController's Unwrap walk — and forward Flush to
// the underlying writer.
func TestStatusRecorderFlushPassthrough(t *testing.T) {
	under := httptest.NewRecorder()
	wrapped := &statusRecorder{ResponseWriter: under, code: http.StatusOK}

	f, ok := http.ResponseWriter(wrapped).(http.Flusher)
	if !ok {
		t.Fatal("statusRecorder does not satisfy http.Flusher")
	}
	f.Flush()
	if !under.Flushed {
		t.Fatal("Flush not forwarded to the underlying writer")
	}

	under.Flushed = false
	if err := http.NewResponseController(wrapped).Flush(); err != nil {
		t.Fatalf("ResponseController.Flush: %v", err)
	}
	if !under.Flushed {
		t.Fatal("ResponseController flush did not reach the underlying writer")
	}

	// A non-flushable underlying writer must not panic.
	plain := &statusRecorder{ResponseWriter: nonFlusher{httptest.NewRecorder()}, code: http.StatusOK}
	plain.Flush()
}

// nonFlusher hides the Flush method of the wrapped writer.
type nonFlusher struct{ w *httptest.ResponseRecorder }

func (n nonFlusher) Header() http.Header         { return n.w.Header() }
func (n nonFlusher) Write(b []byte) (int, error) { return n.w.Write(b) }
func (n nonFlusher) WriteHeader(code int)        { n.w.WriteHeader(code) }

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	name string
	data string
}

// readSSE consumes the stream until after the first event named until
// (or EOF), returning the named events seen (heartbeat comments are
// skipped).
func readSSE(t *testing.T, r *bufio.Reader, until string) []sseEvent {
	t.Helper()
	var events []sseEvent
	cur := sseEvent{}
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return events
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "" && cur.name != "":
			events = append(events, cur)
			if cur.name == until {
				return events
			}
			cur = sseEvent{}
		}
	}
}

// TestJobEventsSSEStream is the acceptance test for the live stream: a
// subscriber sees monotone progress records (non-increasing best
// energy) and a final done event once the job settles.
func TestJobEventsSSEStream(t *testing.T) {
	release := make(chan struct{})
	_, ts := newTestServer(t, Config{Executors: 1, Solve: progressSolve(2, 3, release)})

	code, sr, _ := postSolve(t, ts, `{"spec":{"family":"FLP","scale":1,"case":0}}`)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: code %d", code)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + sr.JobID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("SSE status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
	close(release)

	events := readSSE(t, bufio.NewReader(resp.Body), "done")
	if len(events) == 0 || events[len(events)-1].name != "done" {
		t.Fatalf("stream did not end with done: %+v", events)
	}
	var done struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal([]byte(events[len(events)-1].data), &done); err != nil || done.Status != string(StatusDone) {
		t.Fatalf("done payload %q (err %v)", events[len(events)-1].data, err)
	}

	progress := events[:len(events)-1]
	if len(progress) == 0 {
		t.Fatal("no progress events before done")
	}
	lastIter := 0
	lastBest := 1e300
	for _, ev := range progress {
		if ev.name != "progress" {
			t.Fatalf("unexpected event %q", ev.name)
		}
		var p obs.Progress
		if err := json.Unmarshal([]byte(ev.data), &p); err != nil {
			t.Fatalf("bad progress payload %q: %v", ev.data, err)
		}
		if p.Iteration <= lastIter {
			t.Fatalf("iteration not monotone: %d after %d", p.Iteration, lastIter)
		}
		if p.BestEnergy > lastBest {
			t.Fatalf("best energy worsened: %v after %v", p.BestEnergy, lastBest)
		}
		lastIter, lastBest = p.Iteration, p.BestEnergy
	}
	if lastIter != 5 {
		t.Fatalf("final folded iteration %d, want 5 (stream must not end early)", lastIter)
	}
}

// TestJobEventsLimits covers the stream admission paths: unknown job →
// 404, and subscribers past MaxEventStreams → 503 with Retry-After.
func TestJobEventsLimits(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	_, ts := newTestServer(t, Config{Executors: 1, MaxEventStreams: 1, Solve: stubSolve(block)})

	if resp, err := http.Get(ts.URL + "/v1/jobs/nope/events"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown job: status %d", resp.StatusCode)
		}
	}

	_, sr, _ := postSolve(t, ts, `{"spec":{"family":"FLP","scale":1,"case":0}}`)
	first, err := http.Get(ts.URL + "/v1/jobs/" + sr.JobID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer first.Body.Close()
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first stream: status %d", first.StatusCode)
	}
	second, err := http.Get(ts.URL + "/v1/jobs/" + sr.JobID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	second.Body.Close()
	if second.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second stream: status %d, want 503", second.StatusCode)
	}
	if second.Header.Get("Retry-After") == "" {
		t.Error("503 stream rejection lacks Retry-After")
	}
}

// TestProgressOnJobView checks the poll path: a running job's view
// carries the folded progress, and a terminal view (served from the
// stable payload) does not.
func TestProgressOnJobView(t *testing.T) {
	release := make(chan struct{})
	_, ts := newTestServer(t, Config{Executors: 1, Solve: progressSolve(1, 0, release)})

	_, sr, _ := postSolve(t, ts, `{"spec":{"family":"FLP","scale":1,"case":0}}`)
	deadline := time.Now().Add(5 * time.Second)
	for {
		body := getBody(t, ts.URL+"/v1/jobs/"+sr.JobID)
		if strings.Contains(body, `"progress"`) {
			if !strings.Contains(body, `"iteration":1`) {
				t.Fatalf("running view progress malformed: %s", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("running view never showed progress: %s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(release)

	deadline = time.Now().Add(5 * time.Second)
	for {
		body := getBody(t, ts.URL+"/v1/jobs/"+sr.JobID)
		if strings.Contains(body, `"status":"done"`) {
			if strings.Contains(body, `"progress"`) {
				t.Fatalf("terminal view still carries progress: %s", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHTTPRequestDurationMetric checks the per-route latency histogram
// satellite: after traffic, /metrics exposes
// rasengan_http_request_duration_seconds keyed by route.
func TestHTTPRequestDurationMetric(t *testing.T) {
	_, ts := newTestServer(t, Config{Solve: stubSolve(nil)})
	postSolve(t, ts, `{"spec":{"family":"FLP","scale":1,"case":0},"wait_ms":30000}`)
	metricsText := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(metricsText, "rasengan_http_request_duration_seconds") {
		t.Fatalf("duration histogram missing:\n%s", grepLines(metricsText, "duration"))
	}
	if !strings.Contains(metricsText, `route="solve"`) {
		t.Fatalf("solve route label missing:\n%s", grepLines(metricsText, "http_request_duration"))
	}
}

// TestDebugEventsEndpoint checks the flight-recorder dump handler and
// that the admission path records shed events into the ring.
func TestDebugEventsEndpoint(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	s, ts := newTestServer(t, Config{Executors: 1, QueueCapacity: 1, Solve: stubSolve(block)})

	// Fill the executor + queue, then overflow to provoke a shed event.
	for i := 0; i < 4; i++ {
		postSolve(t, ts, fmt.Sprintf(`{"spec":{"family":"FLP","scale":1,"case":%d}}`, i))
	}

	dbg := httptest.NewServer(s.DebugEventsHandler())
	defer dbg.Close()
	body := getBody(t, dbg.URL)
	events, _, err := obs.ParseEventDump([]byte(body))
	if err != nil {
		t.Fatalf("debug dump unparseable: %v\n%s", err, body)
	}
	sawShed := false
	for _, e := range events {
		if e.Kind == obs.EventShed {
			sawShed = true
		}
	}
	if !sawShed {
		t.Fatalf("no %s event in ring after queue overflow: %+v", obs.EventShed, events)
	}
	if s.Events().Len() == 0 {
		t.Fatal("Events() accessor reports an empty ring")
	}
}

// TestStallWatchdogCapture is the acceptance test for anomaly
// auto-capture: a solve that publishes once and then goes silent past
// the stall window must produce a loadable capture directory (metadata,
// event window, Chrome trace, progress series) and count the capture.
func TestStallWatchdogCapture(t *testing.T) {
	release := make(chan struct{})
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{
		Executors:   1,
		StallWindow: 30 * time.Millisecond,
		CaptureDir:  dir,
		Solve:       progressSolve(1, 0, release),
	})

	_, sr, _ := postSolve(t, ts, `{"spec":{"family":"FLP","scale":1,"case":0}}`)
	capDir := filepath.Join(dir, sr.JobID)

	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(filepath.Join(capDir, "progress.json")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stall watchdog never wrote a capture")
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(release)

	var meta struct {
		Version  int    `json:"version"`
		JobID    string `json:"job_id"`
		Reason   string `json:"reason"`
		SpecHash string `json:"spec_hash"`
	}
	raw, err := os.ReadFile(filepath.Join(capDir, "capture.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &meta); err != nil {
		t.Fatalf("capture.json unparseable: %v\n%s", err, raw)
	}
	if meta.Version != CaptureVersion || meta.JobID != sr.JobID || meta.Reason != "stall" || meta.SpecHash == "" {
		t.Fatalf("capture metadata wrong: %+v", meta)
	}

	raw, err = os.ReadFile(filepath.Join(capDir, "events.json"))
	if err != nil {
		t.Fatal(err)
	}
	events, _, err := obs.ParseEventDump(raw)
	if err != nil {
		t.Fatalf("events.json unparseable: %v", err)
	}
	sawCapture := false
	for _, e := range events {
		if e.Kind == obs.EventAnomalyCapture && e.JobID == sr.JobID {
			sawCapture = true
		}
	}
	if !sawCapture {
		t.Fatalf("event window lacks the anomaly_capture record: %+v", events)
	}

	// The trace must be loadable Chrome trace-event JSON (object format:
	// a traceEvents array whose entries carry the mandatory ph field).
	raw, err = os.ReadFile(filepath.Join(capDir, "trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("trace.json is not trace-event JSON: %v\n%s", err, raw)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatalf("trace has no events: %s", raw)
	}
	for i, ev := range trace.TraceEvents {
		if _, ok := ev["ph"]; !ok {
			t.Fatalf("trace event %d lacks ph: %v", i, ev)
		}
	}

	raw, err = os.ReadFile(filepath.Join(capDir, "progress.json"))
	if err != nil {
		t.Fatal(err)
	}
	var series struct {
		Version  int            `json:"version"`
		Progress []obs.Progress `json:"progress"`
	}
	if err := json.Unmarshal(raw, &series); err != nil {
		t.Fatalf("progress.json unparseable: %v\n%s", err, raw)
	}
	if series.Version != CaptureVersion || len(series.Progress) != 1 || series.Progress[0].Iteration != 1 {
		t.Fatalf("progress series wrong: %+v", series)
	}

	metricsText := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(metricsText, `rasengan_anomaly_captures_total{reason="stall"} 1`) {
		t.Fatalf("capture not counted:\n%s", grepLines(metricsText, "anomaly"))
	}
}

// TestSLOWatchdogCapture checks the latency-SLO trigger and that a
// second trigger (the stall window also firing later) does not produce
// a second capture for the same job.
func TestSLOWatchdogCapture(t *testing.T) {
	release := make(chan struct{})
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{
		Executors:   1,
		StallWindow: 40 * time.Millisecond,
		SolveSLO:    20 * time.Millisecond,
		CaptureDir:  dir,
		Solve:       progressSolve(1, 0, release),
	})

	_, sr, _ := postSolve(t, ts, `{"spec":{"family":"FLP","scale":1,"case":0}}`)
	capDir := filepath.Join(dir, sr.JobID)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(filepath.Join(capDir, "capture.json")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("SLO watchdog never wrote a capture")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Let the stall window fire too, then settle the job.
	time.Sleep(80 * time.Millisecond)
	close(release)

	metricsText := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(metricsText, `rasengan_anomaly_captures_total{reason="slo"} 1`) {
		t.Fatalf("slo capture not counted once:\n%s", grepLines(metricsText, "anomaly"))
	}
	if strings.Contains(metricsText, `reason="stall"} 1`) {
		t.Fatalf("stall fired a second capture for the same job:\n%s", grepLines(metricsText, "anomaly"))
	}
}

// TestRuntimeGaugesExposed checks the Go runtime/process gauges are in
// the registry from startup.
func TestRuntimeGaugesExposed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	metricsText := getBody(t, ts.URL+"/metrics")
	for _, name := range []string{
		"rasengan_go_goroutines",
		"rasengan_go_heap_alloc_bytes",
		"rasengan_go_gc_cycles_total",
		"rasengan_process_uptime_seconds",
		"rasengan_event_ring_events",
	} {
		if !strings.Contains(metricsText, name) {
			t.Errorf("metric %s missing", name)
		}
	}
}
