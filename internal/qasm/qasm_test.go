package qasm

import (
	"math"
	"strings"
	"testing"

	"rasengan/internal/core"
	"rasengan/internal/quantum"
)

func exampleCircuit() *quantum.Circuit {
	c := quantum.NewCircuit(4)
	c.H(0)
	c.X(1)
	c.SX(2)
	c.RX(0, 0.5)
	c.RY(1, -1.25)
	c.RZ(2, 3.000000001)
	c.P(3, 0.125)
	c.CX(0, 1)
	c.SWAP(1, 2)
	c.CCX(0, 1, 3)
	c.CP(2, 3, 0.7)
	c.MCP([]int{0, 2, 3}, 1.9)
	return c
}

func TestExportHeader(t *testing.T) {
	out := Export(exampleCircuit())
	if !strings.HasPrefix(out, "OPENQASM 2.0;") {
		t.Error("missing QASM header")
	}
	if !strings.Contains(out, "qreg q[4];") {
		t.Error("missing qreg")
	}
	if !strings.Contains(out, "cx q[0],q[1];") {
		t.Error("missing cx")
	}
}

func TestRoundTripExact(t *testing.T) {
	orig := exampleCircuit()
	parsed, err := Parse(Export(orig))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.NumQubits != orig.NumQubits {
		t.Fatalf("width %d != %d", parsed.NumQubits, orig.NumQubits)
	}
	if len(parsed.Gates) != len(orig.Gates) {
		t.Fatalf("gate count %d != %d", len(parsed.Gates), len(orig.Gates))
	}
	for i, g := range orig.Gates {
		pg := parsed.Gates[i]
		if pg.Kind != g.Kind || pg.Theta != g.Theta {
			t.Errorf("gate %d: %v(%v) != %v(%v)", i, pg.Kind, pg.Theta, g.Kind, g.Theta)
		}
		for j := range g.Qubits {
			if pg.Qubits[j] != g.Qubits[j] {
				t.Errorf("gate %d qubit %d differs", i, j)
			}
		}
	}
}

func TestRoundTripSemantics(t *testing.T) {
	orig := exampleCircuit()
	parsed, err := Parse(Export(orig))
	if err != nil {
		t.Fatal(err)
	}
	a := quantum.NewDense(4)
	a.Run(orig)
	b := quantum.NewDense(4)
	b.Run(parsed)
	for x := uint64(0); x < 16; x++ {
		if math.Abs(a.Probability(x)-b.Probability(x)) > 1e-12 {
			t.Fatalf("round trip changed semantics at %04b", x)
		}
	}
}

func TestTransitionOperatorRoundTrip(t *testing.T) {
	// The full Rasengan operator circuit must survive serialization.
	tr := core.Transition{U: []int64{1, 0, -1, 1, 0}}
	circ := tr.OperatorCircuit(5, 0.77)
	parsed, err := Parse(Export(circ))
	if err != nil {
		t.Fatal(err)
	}
	a := quantum.NewDense(5)
	a.Run(circ)
	b := quantum.NewDense(5)
	b.Run(parsed)
	for x := uint64(0); x < 32; x++ {
		if math.Abs(a.Probability(x)-b.Probability(x)) > 1e-12 {
			t.Fatalf("operator round trip diverged at %05b", x)
		}
	}
}

func TestParsePiExpressions(t *testing.T) {
	src := `OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
rz(pi) q[0];
rx(pi/2) q[1];
ry(-pi/4) q[0];
p(2*pi) q[1];
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Gates[0].Theta-math.Pi) > 1e-12 {
		t.Error("pi wrong")
	}
	if math.Abs(c.Gates[1].Theta-math.Pi/2) > 1e-12 {
		t.Error("pi/2 wrong")
	}
	if math.Abs(c.Gates[2].Theta+math.Pi/4) > 1e-12 {
		t.Error("-pi/4 wrong")
	}
	if math.Abs(c.Gates[3].Theta-2*math.Pi) > 1e-12 {
		t.Error("2*pi wrong")
	}
}

func TestParseIgnoresClassical(t *testing.T) {
	src := `OPENQASM 2.0;
qreg q[1];
creg c[1];
x q[0];
barrier q;
measure q[0] -> c[0];
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 1 || c.Gates[0].Kind != quantum.GateX {
		t.Errorf("parsed %d gates", len(c.Gates))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"x q[0];",                    // gate before qreg
		"qreg q[2];\nfancy q[0];",    // unknown gate
		"qreg q[2];\nrx(oops) q[0];", // bad angle
		"qreg q[0];",                 // empty register
		"OPENQASM 2.0;\ninclude \"qelib1.inc\";\n", // no qreg at all
		"qreg q[2];\ncx q0,q1;",                    // malformed qubit refs
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted malformed input %q", src)
		}
	}
}

func TestParseAlias(t *testing.T) {
	src := "qreg q[2];\nu1(0.5) q[0];\ncu1(0.25) q[0],q[1];\n"
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Gates[0].Kind != quantum.GateP || c.Gates[1].Kind != quantum.GateCP {
		t.Error("aliases u1/cu1 not mapped")
	}
}

func TestParseRejectsMalformedGateArgs(t *testing.T) {
	cases := []string{
		"qreg q[2];\nccx q[0];",              // wrong arity
		"qreg q[2];\ncx q[0],q[0];",          // duplicate qubit
		"qreg q[2];\ncx q[0],q[5];",          // out of register
		"qreg q[2];\n// mcp(0.5) q[0],q[0];", // mcp duplicate
		"qreg q[2];\n// mcp(0.5) q[0],q[9];", // mcp out of register
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}
