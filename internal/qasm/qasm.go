// Package qasm serializes circuits to and from OpenQASM 2.0 text, the
// interchange format of the Qiskit ecosystem the original artifact lives
// in. Export covers the full gate set of this repository (composite gates
// are emitted via their standard macro names); Parse accepts the subset
// Export produces plus common aliases, enough to round-trip every circuit
// the library builds and to import externally generated transition
// circuits.
package qasm

import (
	"fmt"
	"strconv"
	"strings"

	"rasengan/internal/quantum"
)

// Export renders a circuit as OpenQASM 2.0. Gate angles are emitted with
// full float64 precision so Parse(Export(c)) reproduces c exactly.
func Export(c *quantum.Circuit) string {
	var sb strings.Builder
	sb.WriteString("OPENQASM 2.0;\n")
	sb.WriteString("include \"qelib1.inc\";\n")
	fmt.Fprintf(&sb, "qreg q[%d];\n", c.NumQubits)
	for _, g := range c.Gates {
		sb.WriteString(gateLine(g))
		sb.WriteByte('\n')
	}
	return sb.String()
}

func gateLine(g quantum.Gate) string {
	q := func(i int) string { return fmt.Sprintf("q[%d]", g.Qubits[i]) }
	switch g.Kind {
	case quantum.GateX:
		return fmt.Sprintf("x %s;", q(0))
	case quantum.GateH:
		return fmt.Sprintf("h %s;", q(0))
	case quantum.GateSX:
		return fmt.Sprintf("sx %s;", q(0))
	case quantum.GateRX:
		return fmt.Sprintf("rx(%s) %s;", fmtAngle(g.Theta), q(0))
	case quantum.GateRY:
		return fmt.Sprintf("ry(%s) %s;", fmtAngle(g.Theta), q(0))
	case quantum.GateRZ:
		return fmt.Sprintf("rz(%s) %s;", fmtAngle(g.Theta), q(0))
	case quantum.GateP:
		return fmt.Sprintf("p(%s) %s;", fmtAngle(g.Theta), q(0))
	case quantum.GateCX:
		return fmt.Sprintf("cx %s,%s;", q(0), q(1))
	case quantum.GateSWAP:
		return fmt.Sprintf("swap %s,%s;", q(0), q(1))
	case quantum.GateCCX:
		return fmt.Sprintf("ccx %s,%s,%s;", q(0), q(1), q(2))
	case quantum.GateCP:
		return fmt.Sprintf("cp(%s) %s,%s;", fmtAngle(g.Theta), q(0), q(1))
	case quantum.GateMCP:
		// No standard qelib macro for k-controlled phase; emit a comment
		// marker plus the qubit list so Parse can reconstruct it, keeping
		// the file a valid QASM prefix for tools that ignore comments.
		args := make([]string, len(g.Qubits))
		for i := range g.Qubits {
			args[i] = q(i)
		}
		return fmt.Sprintf("// mcp(%s) %s;", fmtAngle(g.Theta), strings.Join(args, ","))
	default:
		return fmt.Sprintf("// unsupported gate %v", g.Kind)
	}
}

func fmtAngle(theta float64) string {
	return strconv.FormatFloat(theta, 'g', 17, 64)
}

// Parse reads OpenQASM 2.0 text produced by Export (or a compatible
// subset: one gate per line, a single quantum register).
func Parse(src string) (*quantum.Circuit, error) {
	var c *quantum.Circuit
	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := strings.TrimSpace(raw)
		switch {
		case line == "" || strings.HasPrefix(line, "OPENQASM") || strings.HasPrefix(line, "include"):
			continue
		case strings.HasPrefix(line, "// mcp("):
			if c == nil {
				return nil, fmt.Errorf("qasm: line %d: gate before qreg", ln+1)
			}
			if err := parseMCP(c, strings.TrimPrefix(line, "// ")); err != nil {
				return nil, fmt.Errorf("qasm: line %d: %w", ln+1, err)
			}
			continue
		case strings.HasPrefix(line, "//"):
			continue
		case strings.HasPrefix(line, "qreg"):
			n, err := parseQreg(line)
			if err != nil {
				return nil, fmt.Errorf("qasm: line %d: %w", ln+1, err)
			}
			c = quantum.NewCircuit(n)
			continue
		case strings.HasPrefix(line, "creg") || strings.HasPrefix(line, "measure") || strings.HasPrefix(line, "barrier"):
			continue // classical bookkeeping we don't model
		}
		if c == nil {
			return nil, fmt.Errorf("qasm: line %d: gate before qreg", ln+1)
		}
		if err := parseGate(c, line); err != nil {
			return nil, fmt.Errorf("qasm: line %d: %w", ln+1, err)
		}
	}
	if c == nil {
		return nil, fmt.Errorf("qasm: no qreg declaration found")
	}
	return c, nil
}

func parseQreg(line string) (int, error) {
	open := strings.IndexByte(line, '[')
	close := strings.IndexByte(line, ']')
	if open < 0 || close < open {
		return 0, fmt.Errorf("malformed qreg %q", line)
	}
	n, err := strconv.Atoi(line[open+1 : close])
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("malformed qreg size in %q", line)
	}
	return n, nil
}

func parseGate(c *quantum.Circuit, line string) error {
	line = strings.TrimSuffix(line, ";")
	// Split "name(angle) args" or "name args".
	var name, angleStr, argStr string
	if sp := strings.IndexByte(line, ' '); sp < 0 {
		return fmt.Errorf("malformed gate %q", line)
	} else {
		head := line[:sp]
		argStr = strings.TrimSpace(line[sp+1:])
		if par := strings.IndexByte(head, '('); par >= 0 {
			name = head[:par]
			end := strings.LastIndexByte(head, ')')
			if end < par {
				return fmt.Errorf("malformed angle in %q", line)
			}
			angleStr = head[par+1 : end]
		} else {
			name = head
		}
	}
	qubits, err := parseArgs(argStr)
	if err != nil {
		return err
	}
	var theta float64
	if angleStr != "" {
		theta, err = parseAngle(angleStr)
		if err != nil {
			return err
		}
	}
	arity := map[string]int{
		"x": 1, "h": 1, "sx": 1, "rx": 1, "ry": 1, "rz": 1, "p": 1, "u1": 1,
		"cx": 2, "CX": 2, "swap": 2, "cp": 2, "cu1": 2, "ccx": 3,
	}
	want, known := arity[name]
	if known && len(qubits) != want {
		return fmt.Errorf("gate %q needs %d qubits, got %d", name, want, len(qubits))
	}
	seen := map[int]bool{}
	for _, q := range qubits {
		if q < 0 || q >= c.NumQubits {
			return fmt.Errorf("qubit %d outside register of %d", q, c.NumQubits)
		}
		if seen[q] {
			return fmt.Errorf("gate %q repeats qubit %d", name, q)
		}
		seen[q] = true
	}
	switch name {
	case "x":
		c.X(qubits[0])
	case "h":
		c.H(qubits[0])
	case "sx":
		c.SX(qubits[0])
	case "rx":
		c.RX(qubits[0], theta)
	case "ry":
		c.RY(qubits[0], theta)
	case "rz":
		c.RZ(qubits[0], theta)
	case "p", "u1":
		c.P(qubits[0], theta)
	case "cx", "CX":
		c.CX(qubits[0], qubits[1])
	case "swap":
		c.SWAP(qubits[0], qubits[1])
	case "ccx":
		c.CCX(qubits[0], qubits[1], qubits[2])
	case "cp", "cu1":
		c.CP(qubits[0], qubits[1], theta)
	default:
		return fmt.Errorf("unsupported gate %q", name)
	}
	return nil
}

func parseMCP(c *quantum.Circuit, line string) error {
	line = strings.TrimSuffix(line, ";")
	par := strings.IndexByte(line, '(')
	end := strings.IndexByte(line, ')')
	if !strings.HasPrefix(line, "mcp(") || end < par {
		return fmt.Errorf("malformed mcp %q", line)
	}
	theta, err := parseAngle(line[par+1 : end])
	if err != nil {
		return err
	}
	qubits, err := parseArgs(strings.TrimSpace(line[end+1:]))
	if err != nil {
		return err
	}
	if len(qubits) == 0 {
		return fmt.Errorf("mcp with no qubits")
	}
	seen := map[int]bool{}
	for _, q := range qubits {
		if q < 0 || q >= c.NumQubits {
			return fmt.Errorf("mcp qubit %d outside register of %d", q, c.NumQubits)
		}
		if seen[q] {
			return fmt.Errorf("mcp repeats qubit %d", q)
		}
		seen[q] = true
	}
	c.MCP(qubits, theta)
	return nil
}

func parseArgs(argStr string) ([]int, error) {
	parts := strings.Split(argStr, ",")
	out := make([]int, 0, len(parts))
	for _, part := range parts {
		part = strings.TrimSpace(part)
		open := strings.IndexByte(part, '[')
		close := strings.IndexByte(part, ']')
		if open < 0 || close < open {
			return nil, fmt.Errorf("malformed qubit reference %q", part)
		}
		q, err := strconv.Atoi(part[open+1 : close])
		if err != nil {
			return nil, fmt.Errorf("malformed qubit index %q", part)
		}
		out = append(out, q)
	}
	return out, nil
}

// parseAngle accepts a float literal or the pi-expression forms "pi",
// "pi/2", "-pi/4", "2*pi" that QASM emitters commonly produce.
func parseAngle(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return v, nil
	}
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	const pi = 3.141592653589793
	v := 0.0
	switch {
	case s == "pi":
		v = pi
	case strings.HasPrefix(s, "pi/"):
		d, err := strconv.ParseFloat(s[3:], 64)
		if err != nil || d == 0 {
			return 0, fmt.Errorf("malformed angle %q", s)
		}
		v = pi / d
	case strings.HasSuffix(s, "*pi"):
		f, err := strconv.ParseFloat(s[:len(s)-3], 64)
		if err != nil {
			return 0, fmt.Errorf("malformed angle %q", s)
		}
		v = f * pi
	default:
		return 0, fmt.Errorf("malformed angle %q", s)
	}
	if neg {
		v = -v
	}
	return v, nil
}
