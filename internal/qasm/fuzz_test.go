package qasm

import "testing"

// FuzzParse asserts that Parse never panics on arbitrary input and that
// whatever it accepts round-trips through Export.
func FuzzParse(f *testing.F) {
	f.Add("OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n")
	f.Add("qreg q[1];\nrx(pi/2) q[0];\n")
	f.Add("qreg q[3];\n// mcp(0.5) q[0],q[1],q[2];\n")
	f.Add("qreg q[2];\nccx q[0]")
	f.Add("")
	f.Add("qreg q[9999999999];")
	f.Add("qreg q[2];\ncp(-pi/4) q[1],q[0];")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Parse(src)
		if err != nil {
			return
		}
		// Accepted input must survive an export/import cycle unchanged in
		// gate structure.
		back, err := Parse(Export(c))
		if err != nil {
			t.Fatalf("re-parse of exported circuit failed: %v", err)
		}
		if back.NumQubits != c.NumQubits || len(back.Gates) != len(c.Gates) {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
				back.NumQubits, len(back.Gates), c.NumQubits, len(c.Gates))
		}
		for i := range c.Gates {
			if back.Gates[i].Kind != c.Gates[i].Kind {
				t.Fatalf("gate %d kind changed", i)
			}
		}
	})
}

// FuzzParseNoOversizedRegisters guards the width cap: whatever Parse
// accepts must be a buildable circuit.
func FuzzParseNoOversizedRegisters(f *testing.F) {
	f.Add("qreg q[64];\nx q[63];\n")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Parse(src)
		if err != nil {
			return
		}
		for _, g := range c.Gates {
			if err := g.Validate(); err != nil {
				t.Fatalf("accepted invalid gate: %v", err)
			}
			for _, q := range g.Qubits {
				if q >= c.NumQubits {
					t.Fatalf("gate touches qubit %d outside register %d", q, c.NumQubits)
				}
			}
		}
	})
}
