// Package device models the quantum platforms of the evaluation —
// heavy-hex 127-qubit superconducting devices in the style of IBM Kyiv,
// Brisbane, and Quebec — as coupling map + noise model + gate timing
// bundles. Real cloud hardware is the one dependency of the paper that
// cannot be rebuilt; these models preserve the behaviour the experiments
// measure: depth-dependent fidelity decay, constraint violation under
// noise, and per-shot latency.
package device

import (
	"fmt"

	"rasengan/internal/quantum"
	"rasengan/internal/transpile"
)

// Device bundles everything needed to "run" a circuit: topology for
// routing, a noise model for trajectory simulation, and durations for the
// latency model.
type Device struct {
	Name      string
	Coupling  *transpile.CouplingMap
	Noise     quantum.NoiseModel
	Durations transpile.GateDurations

	// T1NS and T2NS are the median relaxation and dephasing times in
	// nanoseconds (Eagle-class: T1 ≈ 250 µs, T2 ≈ 150 µs). The executor
	// derives its per-segment depth budget from T2 so segments stay well
	// inside the coherence window — the decoherence-time constraint the
	// paper's segmented execution is designed around.
	T1NS float64
	T2NS float64

	// ClassicalPerEvalMS models the per-iteration classical overhead of
	// the hosting control plane (parameter update, I/O), used by the
	// latency breakdown of Figure 12.
	ClassicalPerEvalMS float64
}

// NumQubits returns the device size.
func (d *Device) NumQubits() int { return d.Coupling.N }

// Kyiv returns a 127-qubit Eagle-class model with the error rates the
// paper quotes for IBM-Kyiv (two-qubit error 1.2%).
func Kyiv() *Device {
	return &Device{
		Name:     "ibm-kyiv",
		Coupling: transpile.HeavyHex(7, 15),
		Noise: quantum.NoiseModel{
			OneQubitDepol:    0.0004,
			TwoQubitDepol:    0.012,
			AmplitudeDamping: 0.0006,
			PhaseDamping:     0.0006,
			ReadoutError:     0.012,
		},
		Durations:          transpile.DefaultDurations(),
		T1NS:               250_000,
		T2NS:               150_000,
		ClassicalPerEvalMS: 2.2,
	}
}

// Brisbane returns a 127-qubit Eagle-class model with the error rates the
// paper quotes for IBM-Brisbane (two-qubit error 0.82%).
func Brisbane() *Device {
	return &Device{
		Name:     "ibm-brisbane",
		Coupling: transpile.HeavyHex(7, 15),
		Noise: quantum.NoiseModel{
			OneQubitDepol:    0.00030,
			TwoQubitDepol:    0.0082,
			AmplitudeDamping: 0.0004,
			PhaseDamping:     0.0004,
			ReadoutError:     0.009,
		},
		Durations:          transpile.DefaultDurations(),
		T1NS:               250_000,
		T2NS:               150_000,
		ClassicalPerEvalMS: 2.2,
	}
}

// Quebec returns the Quebec-like model the paper compiles against for the
// Table 1 latency figures and the Figure 10 depth curves.
func Quebec() *Device {
	return &Device{
		Name:     "ibm-quebec",
		Coupling: transpile.HeavyHex(7, 15),
		Noise: quantum.NoiseModel{
			OneQubitDepol:    0.00035,
			TwoQubitDepol:    0.00875,
			AmplitudeDamping: 0.0005,
			PhaseDamping:     0.0005,
			ReadoutError:     0.010,
		},
		Durations:          transpile.DefaultDurations(),
		T1NS:               250_000,
		T2NS:               150_000,
		ClassicalPerEvalMS: 2.2,
	}
}

// Noiseless returns an ideal fully connected device of n qubits, used by
// the algorithmic (noise-free simulator) evaluations.
func Noiseless(n int) *Device {
	return &Device{
		Name:               "noise-free",
		Coupling:           transpile.FullyConnected(n),
		Durations:          transpile.DefaultDurations(),
		ClassicalPerEvalMS: 2.0,
	}
}

// ByName resolves a device by its name.
func ByName(name string) (*Device, error) {
	switch name {
	case "ibm-kyiv", "kyiv":
		return Kyiv(), nil
	case "ibm-brisbane", "brisbane":
		return Brisbane(), nil
	case "ibm-quebec", "quebec":
		return Quebec(), nil
	default:
		return nil, fmt.Errorf("device: unknown device %q", name)
	}
}

// Compiled is a circuit lowered to one device: decomposed to the native
// set and routed on the coupling map, with its headline metrics.
type Compiled struct {
	Circuit       *quantum.Circuit
	Depth         int
	TwoQubitDepth int
	CXCount       int
	DurationNS    float64
	ShotLatencyNS float64
	SwapsInserted int
}

// Compile lowers an algorithm-level circuit for this device and reports
// the resulting metrics.
func (d *Device) Compile(c *quantum.Circuit) (*Compiled, error) {
	dec := transpile.Decompose(c)
	layout := transpile.ChooseLayout(dec, d.Coupling)
	routed, err := transpile.Route(dec, d.Coupling, layout)
	if err != nil {
		return nil, fmt.Errorf("device %s: %w", d.Name, err)
	}
	native := transpile.LowerSwaps(routed.Circuit)
	if err := transpile.ValidateNative(native); err != nil {
		return nil, fmt.Errorf("device %s: %w", d.Name, err)
	}
	return &Compiled{
		Circuit:       native,
		Depth:         native.Depth(),
		TwoQubitDepth: native.TwoQubitDepth(),
		CXCount:       native.CountKind(quantum.GateCX),
		DurationNS:    transpile.CircuitDurationNS(native, d.Durations),
		ShotLatencyNS: transpile.ShotLatencyNS(native, d.Durations),
		SwapsInserted: routed.SwapsInserted,
	}, nil
}

// EffectiveOperatorNoise derives the per-operator error probabilities the
// sparse (Rasengan) executor uses: given the compiled gate mix of one
// transition operator, the probability that at least one depolarizing
// event strikes, and the per-qubit damping rates scaled by operator depth.
type EffectiveOperatorNoise struct {
	DepolProb    float64 // P(≥1 Pauli error during the operator)
	AmpDampGamma float64 // per involved qubit for the operator duration
	PhaseGamma   float64
	Readout      float64
}

// OperatorNoise computes the effective noise for an operator compiled to
// numOneQ single-qubit and numTwoQ two-qubit gates with the given depth.
func (d *Device) OperatorNoise(numOneQ, numTwoQ, depth int) EffectiveOperatorNoise {
	surv := d.Noise.SurvivalProb(numOneQ, numTwoQ)
	scale := float64(depth)
	clamp := func(g float64) float64 {
		if g > 0.5 {
			return 0.5
		}
		return g
	}
	return EffectiveOperatorNoise{
		DepolProb:    1 - surv,
		AmpDampGamma: clamp(d.Noise.AmplitudeDamping * scale),
		PhaseGamma:   clamp(d.Noise.PhaseDamping * scale),
		Readout:      d.Noise.ReadoutError,
	}
}
