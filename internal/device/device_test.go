package device

import (
	"testing"

	"rasengan/internal/quantum"
)

func TestDeviceModels(t *testing.T) {
	for _, d := range []*Device{Kyiv(), Brisbane(), Quebec()} {
		if d.NumQubits() != 127 {
			t.Errorf("%s has %d qubits, want 127", d.Name, d.NumQubits())
		}
		if d.Noise.IsZero() {
			t.Errorf("%s has no noise", d.Name)
		}
	}
	// The paper: Kyiv 2q error 1.2% is worse than Brisbane 0.82%.
	if Kyiv().Noise.TwoQubitDepol <= Brisbane().Noise.TwoQubitDepol {
		t.Error("Kyiv should be noisier than Brisbane")
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"kyiv", "ibm-brisbane", "quebec"} {
		if _, err := ByName(n); err != nil {
			t.Errorf("ByName(%s): %v", n, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("bogus device accepted")
	}
}

func TestCompileSimpleCircuit(t *testing.T) {
	d := Kyiv()
	c := quantum.NewCircuit(4)
	c.H(0)
	c.CX(0, 3)
	c.MCP([]int{0, 1, 2, 3}, 0.7)
	comp, err := d.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Depth <= 0 || comp.CXCount <= 0 {
		t.Errorf("suspicious metrics: %+v", comp)
	}
	if comp.DurationNS <= 0 || comp.ShotLatencyNS <= comp.DurationNS {
		t.Errorf("latency model wrong: %+v", comp)
	}
	// Routing on heavy-hex must respect coupling for every CX.
	for _, g := range comp.Circuit.Gates {
		if g.Kind == quantum.GateCX && !d.Coupling.Coupled(g.Qubits[0], g.Qubits[1]) {
			t.Fatal("compiled CX violates coupling")
		}
	}
}

func TestCompileTooWide(t *testing.T) {
	d := Kyiv()
	c := quantum.NewCircuit(128)
	c.H(127)
	if _, err := d.Compile(c); err == nil {
		t.Error("128-qubit circuit accepted on 127-qubit device")
	}
}

func TestNoiselessDevice(t *testing.T) {
	d := Noiseless(10)
	if !d.Noise.IsZero() {
		t.Error("noiseless device has noise")
	}
	c := quantum.NewCircuit(10)
	c.CX(0, 9)
	comp, err := d.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	if comp.SwapsInserted != 0 {
		t.Error("fully connected device required swaps")
	}
}

func TestOperatorNoise(t *testing.T) {
	d := Kyiv()
	n := d.OperatorNoise(10, 20, 15)
	if n.DepolProb <= 0 || n.DepolProb >= 1 {
		t.Errorf("depol prob %v out of range", n.DepolProb)
	}
	// More gates → more error.
	n2 := d.OperatorNoise(10, 40, 15)
	if n2.DepolProb <= n.DepolProb {
		t.Error("noise should grow with gate count")
	}
	// Gamma clamps at 0.5.
	n3 := d.OperatorNoise(0, 0, 100000)
	if n3.AmpDampGamma > 0.5 {
		t.Error("gamma not clamped")
	}
}

func TestT2DerivedModels(t *testing.T) {
	for _, d := range []*Device{Kyiv(), Brisbane(), Quebec()} {
		if d.T2NS <= 0 || d.T1NS < d.T2NS {
			t.Errorf("%s: implausible coherence times T1=%v T2=%v", d.Name, d.T1NS, d.T2NS)
		}
	}
}

func TestCompileUsesInteractionLayout(t *testing.T) {
	// A transition operator over scattered qubits should compile with few
	// or no SWAPs thanks to the interaction-aware initial layout.
	d := Quebec()
	c := quantum.NewCircuit(12)
	c.CX(0, 11)
	c.CX(0, 11)
	c.CX(0, 11)
	comp, err := d.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	// Identity layout would need ≥ several swaps for each distant CX; the
	// interaction layout places 0 and 11 adjacent so none are needed.
	if comp.SwapsInserted != 0 {
		t.Errorf("interaction layout still needed %d swaps", comp.SwapsInserted)
	}
}
