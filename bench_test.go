// Benchmarks regenerating each table and figure of the paper's evaluation
// section. Every benchmark runs the corresponding experiment harness at a
// scaled-down configuration (the same harness `rasengan-bench` exposes;
// pass -full there for paper-scale runs) and reports the headline number
// as a custom metric so `go test -bench` output doubles as a reproduction
// log.
package rasengan

import (
	"testing"

	"rasengan/internal/experiments"
)

// benchConfig is the scaled-down configuration shared by the benchmark
// harnesses: one case per benchmark, a small optimizer budget, sampled
// execution, and a dense-simulation cap that keeps the widest baselines
// affordable in CI.
func benchConfig() experiments.Config {
	return experiments.Config{
		Cases:          1,
		MaxIter:        30,
		Layers:         3,
		Trajectories:   4,
		MaxDenseQubits: 12,
		Seed:           7,
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Err == nil && row.Method == "rasengan" {
				b.ReportMetric(row.ARG, "rasengan-ARG")
			}
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ARGImprovement["choco-q"], "ARG-improv-vs-chocoq")
		b.ReportMetric(res.DepthImprovement["choco-q"], "depth-improv-vs-chocoq")
	}
}

func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(benchConfig(), 6)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RasenganARG, "rasengan-ARG")
		b.ReportMetric(float64(res.Points[len(res.Points)-1].ChocoDepth), "chocoq-depth@max-layers")
	}
}

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(benchConfig(), 5)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(float64(last.NumVars), "max-vars")
		b.ReportMetric(last.NoiseFreeARG, "ARG@max-vars")
	}
}

func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if c := res.Cells["ibm-kyiv"]["rasengan"]; c != nil {
			b.ReportMetric(c.ARG.Mean, "kyiv-rasengan-ARG")
			b.ReportMetric(c.InRate.Mean, "kyiv-rasengan-inrate")
		}
	}
}

func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Err == nil && row.Algorithm == "rasengan" {
				b.ReportMetric(row.Latency.TotalMS(), "rasengan-latency-ms")
			}
		}
	}
}

func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig13(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		if last.Err == nil {
			b.ReportMetric(float64(last.TotalShots), "shots@max-segments")
		}
	}
}

func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig14(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.PauliSweep[0].ARG.Mean, "ARG@1e-4")
		b.ReportMetric(res.PauliSweep[len(res.PauliSweep)-1].ARG.Mean, "ARG@1e-3")
	}
}

func BenchmarkFig15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig15(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.AvgReduction2, "opt2-depth-reduction-pct")
		b.ReportMetric(100*res.AvgReduction3, "opt3-depth-reduction-pct")
	}
}

func BenchmarkFig16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig16(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if c := res.Cells["ibm-kyiv"]["+opt3"]; c != nil {
			b.ReportMetric(c.InRate.Mean, "kyiv-full-inrate")
		}
	}
}

func BenchmarkFig17(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig17(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		best := 0.0
		for _, p := range res.Points {
			if p.Speedup > best {
				best = p.Speedup
			}
		}
		b.ReportMetric(best, "best-pruning-speedup")
	}
}

// BenchmarkAblation exercises the implementation-choice ablation of
// DESIGN.md §3 (multi-start, optimizer family, depth budget, trajectory
// count).
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Ablation(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.Rows {
			if r.Study == "multi-start" && r.Variant == "3 starts (default)" {
				b.ReportMetric(r.ARG.Mean, "multistart-ARG")
			}
		}
	}
}
